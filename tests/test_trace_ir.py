"""Tests for the versioned trace IR: serialization, import dialects,
transforms, the strided/list request shape, and replay determinism."""

import io
import json
import os

import pytest

from repro.cluster.config import TRACE_ENV_VAR, ClusterConfig
from repro.workload import transform as tr
from repro.workload.classify import classify_trace
from repro.workload.record import TraceRecorder
from repro.workload.replay import (
    TraceReplayer,
    record_microbench_trace,
    replay_trace_hash,
)
from repro.workload.runner import run_instances
from repro.workload.trace import (
    TRACE_FORMAT,
    TRACE_VERSION,
    Trace,
    TraceEvent,
    TraceFormatError,
    load_path,
    loads,
    validate_trace,
)
from tests.conftest import make_cluster


def _event(**kw):
    base = dict(
        time=0.0, process="p0", path="/f", op="read", offset=0, nbytes=4096
    )
    base.update(kw)
    return TraceEvent(**base)


# -- event model -----------------------------------------------------------
def test_legacy_op_spelling_is_canonicalized():
    assert _event(op="sync-write").op == "sync_write"
    assert _event(op="sync_write").op == "sync_write"
    with pytest.raises(TraceFormatError):
        _event(op="append")


def test_strided_shape_validation_and_ranges():
    e = _event(offset=1024, nbytes=4096, stride=8192, count=3)
    assert e.is_list
    assert e.ranges == [(1024, 4096), (9216, 4096), (17408, 4096)]
    assert e.total_bytes == 3 * 4096
    assert e.end_offset == 1024 + 2 * 8192 + 4096
    with pytest.raises(TraceFormatError, match="stride"):
        _event(nbytes=4096, stride=1024, count=3)  # overlapping stride
    with pytest.raises(TraceFormatError, match="count"):
        _event(count=0)
    with pytest.raises(TraceFormatError):
        _event(think_s=-1.0)


# -- serialization ---------------------------------------------------------
def _sample_trace() -> Trace:
    return Trace(
        events=[
            _event(time=0.0, op="write", app="gen", instance=1),
            _event(time=1e-3, process="p1", op="sync_write", offset=8192),
            _event(
                time=2e-3, op="read", stride=16384, count=4, think_s=5e-5
            ),
        ],
        meta={"source": "unit-test"},
    )


def test_jsonl_roundtrip_preserves_everything():
    trace = _sample_trace()
    text = trace.dumps()
    header = json.loads(text.splitlines()[0])
    assert header["format"] == TRACE_FORMAT
    assert header["version"] == TRACE_VERSION
    assert header["events"] == 3
    reloaded = loads(text)
    assert reloaded.events == trace.events
    assert reloaded.meta == trace.meta
    assert reloaded.content_hash() == trace.content_hash()
    # a second round trip is byte-identical
    assert reloaded.dumps() == text


def test_csv_dialect_import_and_deprecation_note():
    csv_text = (
        "time,process,path,op,offset,nbytes\n"
        "0.0,p0,/f,read,0,4096\n"
        "0.001,p0,/f,sync-write,4096,4096\n"
    )
    with pytest.warns(DeprecationWarning, match="sync-write"):
        trace = loads(csv_text)
    assert [e.op for e in trace.events] == ["read", "sync_write"]
    assert trace.meta["dialect"] == "csv"


def test_csv_export_rejects_strided_events():
    trace = _sample_trace()
    with pytest.raises(TraceFormatError, match="strided"):
        trace.dump_csv(io.StringIO())


@pytest.mark.parametrize(
    "text, match",
    [
        ("", "empty"),
        ('{"format": "something-else", "version": 2}\n', "header"),
        (
            '{"format": "repro-trace", "version": 99, "events": 0}\n',
            "version",
        ),
        (
            '{"format": "repro-trace", "version": 2, "events": 2}\n'
            '{"time": 0, "process": "p", "path": "/f", "op": "read", '
            '"offset": 0, "nbytes": 1}\n',
            "truncated",
        ),
        (
            '{"format": "repro-trace", "version": 2, "events": 1}\n'
            '{"time": 0, "process": "p", "path": "/f", "op": "evict", '
            '"offset": 0, "nbytes": 1}\n',
            "unknown op",
        ),
        (
            '{"format": "repro-trace", "version": 2, "events": 1}\n'
            '{"time": 0, "process": "p", "path": "/f", "op": "read", '
            '"offset": -4, "nbytes": 1}\n',
            "geometry",
        ),
        (
            '{"format": "repro-trace", "version": 2, "events": 1}\n'
            "{not json\n",
            "malformed",
        ),
        (
            '{"format": "repro-trace", "version": 2, "events": 1}\n'
            '{"time": 0, "process": "p"}\n',
            "missing fields",
        ),
    ],
)
def test_malformed_traces_are_rejected(text, match):
    with pytest.raises(TraceFormatError, match=match):
        loads(text)


def test_validate_trace_reports_cross_event_issues():
    assert validate_trace(Trace()) == ["trace has no events"]
    clean = _sample_trace()
    assert validate_trace(clean) == []


# -- recording -------------------------------------------------------------
def test_bus_tap_records_any_run():
    cluster = make_cluster()
    recorder = TraceRecorder(cluster)
    recorder.tap()
    client = cluster.client("node0")
    client.process_name = "tapped"

    def worker(env):
        f = yield from client.open("/data")
        yield from client.write(f, 0, 8192)
        yield from client.read(f, 0, 8192)
        yield from client.sync_write(f, 0, 4096)

    env = cluster.env
    env.run(until=env.process(worker(env)))
    recorder.close()
    trace = recorder.trace(source="tap-test")
    assert trace.op_counts() == {"read": 1, "write": 1, "sync_write": 1}
    assert trace.processes == ["tapped"]
    assert trace.paths == ["/data"]
    assert trace.meta["source"] == "tap-test"


def test_run_instances_record_returns_trace():
    from repro.workload.microbench import MicroBenchParams

    config = ClusterConfig(compute_nodes=2, iod_nodes=2)
    params = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=4096,
        iterations=4,
        partition_bytes=2 * 2**20,
    )
    outcome = run_instances(config, [params], record=True)
    assert outcome.trace is not None
    assert len(outcome.trace) == 2 * 4  # p=2 ranks x 4 iterations
    assert all(e.app == "microbench" for e in outcome.trace)
    assert outcome.trace.processes == [
        "mb-i0-r0@node0", "mb-i0-r1@node1"
    ]


def test_recording_does_not_perturb_the_schedule():
    """The bus tap must be schedule-neutral: a recorded run keeps the
    unrecorded run's exact BLAKE2b schedule hash."""
    from repro.analysis.determinism import fig4_point_trace_hash
    from repro.sim.engine import TRACE_HASH_ENV_VAR
    from repro.workload.microbench import MicroBenchParams

    config = ClusterConfig(compute_nodes=2, iod_nodes=2, caching=True)
    params = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=4096,
        iterations=8,
        mode="read",
        locality=0.0,
        partition_bytes=2 * 2**20,
        seed=1234,
    )
    previous = os.environ.get(TRACE_HASH_ENV_VAR)
    os.environ[TRACE_HASH_ENV_VAR] = "1"
    try:
        outcome = run_instances(config, [params], record=True)
    finally:
        if previous is None:
            os.environ.pop(TRACE_HASH_ENV_VAR, None)
        else:
            os.environ[TRACE_HASH_ENV_VAR] = previous
    recorded_hash = outcome.cluster.env.trace_hash()
    assert recorded_hash == fig4_point_trace_hash()


# -- replay determinism (the tentpole acceptance) --------------------------
def test_recorded_run_serialize_reload_replay_is_bit_identical():
    """record -> serialize -> reload -> replay: identical schedule hash
    whether the replay consumes the original text or a reloaded and
    re-serialized copy."""
    text = record_microbench_trace()
    reloaded_text = loads(text).dumps()
    assert reloaded_text == text
    assert loads(text).content_hash() == loads(reloaded_text).content_hash()
    direct = replay_trace_hash(text)
    roundtrip = replay_trace_hash(reloaded_text)
    again = replay_trace_hash(text)
    assert direct == roundtrip == again


def test_replay_hash_identical_under_parallel_sweep():
    from repro.experiments.parallel import sweep

    text = record_microbench_trace()
    serial = replay_trace_hash(text)
    parallel = sweep([(text,), (text,)], replay_trace_hash, max_workers=2)
    assert parallel == [serial, serial]


# -- strided/list I/O end to end -------------------------------------------
def test_strided_readv_reaches_iods_as_list_requests():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")
    # Three 4 KB ranges spaced 16 KB apart: same stripe, one iod, so
    # the request must arrive as ONE multi-range message.
    ranges = [(0, 4096), (16384, 4096), (32768, 4096)]

    def worker(env):
        f = yield from client.open("/strided")
        yield from client.writev(f, ranges)
        yield from client.readv(f, ranges)

    env = cluster.env
    env.run(until=env.process(worker(env)))
    assert cluster.metrics.count("client.list_reads") == 1
    assert cluster.metrics.count("client.list_writes") == 1
    assert cluster.metrics.count("iod.list_requests") >= 2


def test_strided_trace_event_replays_through_client_to_iods():
    """A count>1 IR event must reach the iods as list requests."""
    source = make_cluster(caching=False)
    recorder = TraceRecorder(source)
    recorder.tap()
    client = source.client("node0")
    client.process_name = "strided-app"

    def worker(env):
        f = yield from client.open("/strided")
        yield from client.writev(f, [(0, 4096), (16384, 4096)])
        yield from client.readv(
            f, [(0, 4096), (16384, 4096), (32768, 4096)]
        )

    env = source.env
    env.run(until=env.process(worker(env)))
    recorder.close()
    trace = loads(recorder.trace().dumps())
    strided = [e for e in trace.events if e.is_list]
    assert len(strided) == 2
    assert {e.count for e in strided} == {2, 3}

    target = make_cluster(caching=False)
    TraceReplayer(target, trace, preserve_timing=False).run()
    assert target.metrics.count("client.list_reads") == 1
    assert target.metrics.count("client.list_writes") == 1
    assert target.metrics.count("iod.list_requests") >= 2


def test_readv_writev_carry_real_bytes():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")
    ranges = [(0, 4096), (65536 + 512, 4096)]  # spans both iods
    chunks = [b"a" * 4096, b"b" * 4096]

    def worker(env):
        f = yield from client.open("/bytes")
        yield from client.writev(f, ranges, data=chunks)
        parts = yield from client.readv(f, ranges, want_data=True)
        return parts

    env = cluster.env
    parts = env.run(until=env.process(worker(env)))
    assert parts == chunks


# -- transforms ------------------------------------------------------------
def test_time_scale_scales_times_and_think():
    trace = _sample_trace()
    scaled = tr.time_scale(0.5)(trace)
    assert [e.time for e in scaled.events] == [
        t * 0.5 for t in (0.0, 1e-3, 2e-3)
    ]
    assert scaled.events[-1].think_s == pytest.approx(2.5e-5)
    assert scaled.meta["transforms"] == ["time_scale(0.5)"]
    assert scaled.meta["source"] == "unit-test"


def test_scale_out_clones_streams_and_keeps_sharing_structure():
    trace = Trace(
        events=[
            _event(process="a", path="/shared"),
            _event(time=1e-3, process="b", path="/shared"),
            _event(time=2e-3, process="a", path="/priv-a", instance=1),
        ]
    )
    doubled = tr.scale_out(2)(trace)
    assert len(doubled) == 6
    assert set(doubled.processes) == {"a", "b", "a~1", "b~1"}
    # shared path stays shared; the private path gets a replica twin
    assert "/shared" in doubled.paths and "/priv-a~1" in doubled.paths
    assert max(e.instance for e in doubled.events) == 1 + 2  # offset by span
    with pytest.raises(ValueError):
        tr.scale_out(0)


def test_remix_sharing_extremes():
    trace = Trace(
        events=[
            _event(process="a", path="/hot"),
            _event(time=1e-3, process="b", path="/hot"),
            _event(time=2e-3, process="b", path="/cold"),
        ]
    )
    full = tr.remix_sharing(1.0, seed=7)(trace)
    assert full.paths == ["/hot"]
    none = tr.remix_sharing(0.0, seed=7)(trace)
    assert none.paths == ["/cold~b", "/hot~a", "/hot~b"]
    # deterministic under a fixed seed
    mid_a = tr.remix_sharing(0.5, seed=3)(trace)
    mid_b = tr.remix_sharing(0.5, seed=3)(trace)
    assert mid_a.content_hash() == mid_b.content_hash()


def test_zipf_reskew_is_deterministic_and_keeps_geometry():
    trace = _sample_trace()
    a = tr.zipf_reskew(1.5, seed=11)(trace)
    b = tr.zipf_reskew(1.5, seed=11)(trace)
    assert a.content_hash() == b.content_hash()
    assert [
        (e.time, e.offset, e.nbytes, e.count) for e in a.events
    ] == [(e.time, e.offset, e.nbytes, e.count) for e in trace.events]


def test_compose_applies_in_order():
    trace = _sample_trace()
    out = tr.compose(tr.time_scale(2.0), tr.time_scale(0.5))(trace)
    assert out.meta["transforms"] == ["time_scale(2.0)", "time_scale(0.5)"]
    assert [e.time for e in out.events] == [e.time for e in trace.events]


def test_classify_trace_on_ir():
    trace = Trace(
        events=[
            _event(process="w", op="write", path="/pc"),
            _event(time=1e-3, process="r", op="read", path="/pc"),
            _event(time=2e-3, process="solo", path="/mine"),
        ]
    )
    report = classify_trace(trace)
    assert report == {"/pc": "producer-consumer", "/mine": "private"}


# -- the REPRO_TRACE / trace_source seam -----------------------------------
def test_trace_source_seam_replays_instead_of_synthetic(tmp_path):
    """The acceptance scenario: a recorded microbench trace, 2x
    node-scaled and sharing-remixed, replayed end-to-end through
    run_instances via the trace-source seam."""
    text = record_microbench_trace(iterations=4)
    transformed = tr.compose(
        tr.scale_out(2), tr.remix_sharing(0.5, seed=5)
    )(loads(text))
    path = tmp_path / "scaled.jsonl"
    path.write_text(transformed.dumps())

    config = ClusterConfig(
        compute_nodes=2, iod_nodes=2, trace_source=str(path)
    )
    outcome = run_instances(config, [])  # synthetic params ignored
    assert outcome.total_time > 0
    # 2 ranks x 2 replicas replayed
    assert sum(len(i.per_rank) for i in outcome.instances) == 4
    assert outcome.counter("client.reads") == len(transformed)
    assert load_path(str(path)).content_hash() == transformed.content_hash()


def test_trace_env_var_reaches_run_instances(tmp_path, monkeypatch):
    text = record_microbench_trace(iterations=2)
    path = tmp_path / "run.jsonl"
    path.write_text(text)
    monkeypatch.setenv(TRACE_ENV_VAR, str(path))
    outcome = run_instances(ClusterConfig(compute_nodes=2, iod_nodes=2), [])
    assert outcome.total_time > 0
    assert outcome.counter("client.reads") == len(loads(text))
