"""Unit tests for CacheBlock state transitions."""

import pytest

from repro.cache.block import BlockState, CacheBlock
from repro.sim import Environment


def _block(index=0, size=4096):
    return CacheBlock(index, size)


def test_new_block_is_free():
    b = _block()
    assert b.state is BlockState.FREE
    assert b.key is None
    assert b.data is None
    assert not b.is_evictable


def test_assign_makes_pending():
    env = Environment()
    b = _block()
    ev = env.event()
    b.assign((1, 0), ev)
    assert b.state is BlockState.PENDING
    assert b.key == (1, 0)
    assert b.ready_event is ev
    assert b.refbit
    assert not b.is_evictable  # pending blocks cannot be evicted


def test_assign_nonfree_raises():
    env = Environment()
    b = _block()
    b.assign((1, 0), env.event())
    with pytest.raises(RuntimeError):
        b.assign((1, 1), env.event())


def test_write_dirties():
    env = Environment()
    b = _block()
    b.assign((1, 0), env.event())
    b.write(0, 100, b"x" * 100)
    assert b.state is BlockState.DIRTY
    assert b.dirty.covers(0, 100)
    assert b.valid.covers(0, 100)
    assert b.read_slice(0, 100) == b"x" * 100
    assert b.dirty_epoch == 1


def test_write_to_free_raises():
    b = _block()
    with pytest.raises(RuntimeError):
        b.write(0, 10, None)


def test_write_sizeless_mode():
    env = Environment()
    b = _block()
    b.assign((1, 0), env.event())
    b.write(0, 4096, None)
    assert b.state is BlockState.DIRTY
    assert b.data is None
    assert b.read_slice(0, 10) is None


def test_bounds_checking():
    env = Environment()
    b = _block(size=4096)
    b.assign((1, 0), env.event())
    with pytest.raises(ValueError):
        b.write(0, 4097, None)
    with pytest.raises(ValueError):
        b.merge_fetch(-1, 10, None)
    with pytest.raises(ValueError):
        b.read_slice(100, 50)


def test_merge_fetch_respects_dirty_bytes():
    env = Environment()
    b = _block()
    b.assign((1, 0), env.event())
    b.write(100, 200, b"D" * 100)  # dirty bytes 100..200
    b.merge_fetch(0, 4096, b"F" * 4096)
    assert b.read_slice(0, 100) == b"F" * 100
    assert b.read_slice(100, 200) == b"D" * 100  # dirty preserved
    assert b.read_slice(200, 300) == b"F" * 100
    assert b.valid.covers(0, 4096)


def test_make_ready_fires_event_and_becomes_clean():
    env = Environment()
    ev = env.event()
    b = _block()
    b.assign((1, 0), ev)
    b.merge_fetch(0, 4096, None)
    b.make_ready()
    assert b.state is BlockState.CLEAN
    assert b.ready_event is None
    assert ev.triggered and ev.value is b


def test_make_ready_stays_dirty_if_written_while_pending():
    env = Environment()
    b = _block()
    b.assign((1, 0), env.event())
    b.write(0, 10, None)
    b.merge_fetch(0, 4096, None)
    b.make_ready()
    assert b.state is BlockState.DIRTY


def test_mark_clean_epoch_guard():
    env = Environment()
    b = _block()
    b.assign((1, 0), env.event())
    b.make_ready()
    b.write(0, 10, None)
    epoch = b.dirty_epoch
    b.write(10, 20, None)  # raced write bumps epoch
    assert b.mark_clean(epoch) is False
    assert b.state is BlockState.DIRTY
    assert b.mark_clean(b.dirty_epoch) is True
    assert b.state is BlockState.CLEAN
    assert b.dirty.is_empty()


def test_mark_clean_on_clean_is_false():
    b = _block()
    assert b.mark_clean(0) is False


def test_reset_clears_everything():
    env = Environment()
    b = _block()
    b.assign((1, 0), env.event())
    b.write(0, 10, b"z" * 10)
    b.make_ready()
    b.reset()
    assert b.state is BlockState.FREE
    assert b.key is None
    assert b.data is None
    assert b.valid.is_empty() and b.dirty.is_empty()
    assert not b.doomed


def test_reset_pending_fails_waiters():
    env = Environment()
    ev = env.event()
    b = _block()
    b.assign((1, 0), ev)
    b.reset()
    assert ev.triggered and not ev.ok


def test_reset_pinned_raises():
    env = Environment()
    b = _block()
    b.assign((1, 0), env.event())
    b.pin()
    with pytest.raises(RuntimeError):
        b.reset()


def test_pin_unpin():
    env = Environment()
    b = _block()
    b.assign((1, 0), env.event())
    b.make_ready()
    assert b.is_evictable
    b.pin()
    b.pin()
    assert not b.is_evictable
    b.unpin()
    assert not b.is_evictable
    b.unpin()
    assert b.is_evictable
    with pytest.raises(RuntimeError):
        b.unpin()


def test_repr_mentions_state():
    b = _block(index=7)
    assert "#7" in repr(b)
    assert "free" in repr(b)
