"""Tests for reuse-distance (Mattson) analysis, including a
cross-check against the simulated cache."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.analysis import (
    INFINITE,
    analyze_trace,
    events_to_blocks,
    hit_ratio_curve,
    reuse_distances,
    working_set_size,
)
from repro.workload.trace import TraceEvent


def _brute_force_distances(accesses):
    """O(n^2) reference implementation."""
    out = []
    for i, block in enumerate(accesses):
        prev = None
        for j in range(i - 1, -1, -1):
            if accesses[j] == block:
                prev = j
                break
        if prev is None:
            out.append(INFINITE)
        else:
            out.append(float(len(set(accesses[prev + 1 : i]))))
    return out


def test_distances_basic():
    assert reuse_distances(["a", "a"]) == [INFINITE, 0.0]
    assert reuse_distances(["a", "b", "a"]) == [INFINITE, INFINITE, 1.0]
    assert reuse_distances([]) == []


def test_distances_classic_example():
    trace = list("abcba")
    # c->b: distance 1 (c between); b->a: distance 2 (c, b between)
    assert reuse_distances(trace) == [INFINITE, INFINITE, INFINITE, 1.0, 2.0]


@settings(max_examples=150)
@given(trace=st.lists(st.integers(0, 12), max_size=60))
def test_property_matches_brute_force(trace):
    assert reuse_distances(trace) == _brute_force_distances(trace)


def test_hit_ratio_curve():
    distances = [INFINITE, 0.0, 1.0, 2.0]
    curve = hit_ratio_curve(distances, [1, 2, 3, 100])
    assert curve[1] == 0.25  # only d=0 hits
    assert curve[2] == 0.50
    assert curve[3] == 0.75
    assert curve[100] == 0.75  # compulsory miss never hits


def test_hit_ratio_curve_validation():
    with pytest.raises(ValueError):
        hit_ratio_curve([0.0], [0])
    assert hit_ratio_curve([], [4]) == {4: 0.0}


def test_hit_ratio_monotone_in_cache_size():
    distances = reuse_distances([i % 7 for i in range(100)])
    curve = hit_ratio_curve(distances, [1, 2, 4, 8, 16])
    values = [curve[s] for s in (1, 2, 4, 8, 16)]
    assert values == sorted(values)


def test_working_set_size():
    assert working_set_size(["a", "b", "a"]) == 2


def test_events_to_blocks_expansion():
    events = [
        TraceEvent(1.0, "p", "/f", "read", 0, 8192),
        TraceEvent(0.5, "p", "/g", "write", 4096, 100),
    ]
    blocks = events_to_blocks(events)
    # sorted by time: /g first
    assert blocks == [("/g", 1), ("/f", 0), ("/f", 1)]


def test_events_to_blocks_filters():
    events = [
        TraceEvent(0.0, "p", "/f", "write", 0, 4096),
        TraceEvent(1.0, "p", "/f", "read", 0, 0),  # zero bytes
    ]
    assert events_to_blocks(events, ops=("read",)) == []


def test_analyze_trace_summary():
    events = [
        TraceEvent(float(i), "p", "/f", "read", (i % 4) * 4096, 4096)
        for i in range(40)
    ]
    summary = analyze_trace(events, cache_sizes=[1, 4, 300])
    assert summary["accesses"] == 40
    assert summary["distinct_blocks"] == 4
    assert summary["compulsory_misses"] == 4
    assert summary["hit_ratio_by_cache_blocks"][4] == 0.9  # 36/40
    assert summary["hit_ratio_by_cache_blocks"][1] == 0.0


def test_prediction_matches_simulated_exact_lru_cache():
    """The whole point: the analytic curve predicts what the simulated
    exact-LRU cache actually does."""
    import numpy as np

    from repro.cluster.cluster import Cluster
    from repro.cluster.config import CacheConfig, ClusterConfig
    from repro.workload.trace import TraceRecorder

    n_cache_blocks = 16
    config = ClusterConfig(
        compute_nodes=1,
        iod_nodes=1,
        caching=True,
        cache=CacheConfig(
            size_bytes=n_cache_blocks * 4096,
            replacement="exact-lru",
            # keep the harvester from evicting ahead of demand, which
            # would make the simulated cache effectively smaller
            low_watermark=0.01,
            high_watermark=0.05,
            readahead=False,
        ),
    )
    cluster = Cluster(config)
    recorder = TraceRecorder(cluster)
    client = recorder.attach(cluster.client("node0"), "probe")
    rng = np.random.default_rng(5)

    def app(env):
        f = yield from client.open("/lru")
        for _ in range(300):
            block = int(rng.zipf(1.5)) % 40  # skewed reuse
            yield from client.read(f, block * 4096, 4096)

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)

    blocks = events_to_blocks(recorder.events)
    curve = hit_ratio_curve(reuse_distances(blocks), [n_cache_blocks])
    predicted = curve[n_cache_blocks]
    m = cluster.metrics
    simulated = m.count("cache.hits") / (
        m.count("cache.hits") + m.count("cache.misses")
    )
    # the simulated cache loses a little capacity to the harvester's
    # watermark slack; allow a few points of difference
    assert simulated == pytest.approx(predicted, abs=0.08)
