"""End-to-end data-integrity tests across the full stack.

The strongest check in the suite: drive random mixes of cached reads,
buffered writes, sync writes and raw (uncached) operations from
multiple processes on multiple nodes against a reference model of the
file contents, with a deliberately tiny cache so eviction, write-back,
gap-fetch and invalidation paths all fire.
"""

import numpy as np
import pytest

from tests.conftest import make_cluster


def _expected(model: bytearray, offset: int, nbytes: int) -> bytes:
    return bytes(model[offset : offset + nbytes])


def _apply(model: bytearray, offset: int, data: bytes) -> None:
    model[offset : offset + len(data)] = data


def test_single_writer_random_ops_match_model():
    """One cached process: every read observes its own prior writes."""
    cluster = make_cluster(compute_nodes=1, iod_nodes=2, cache_blocks=8)
    client = cluster.client("node0")
    rng = np.random.default_rng(7)
    file_bytes = 256 * 1024
    model = bytearray(file_bytes)

    def app(env):
        f = yield from client.open("/it")
        for step in range(120):
            offset = int(rng.integers(0, file_bytes - 1))
            nbytes = int(rng.integers(1, min(20000, file_bytes - offset)))
            if rng.random() < 0.5:
                data = bytes([int(rng.integers(1, 255))]) * nbytes
                _apply(model, offset, data)
                yield from client.write(f, offset, nbytes, data)
            else:
                got = yield from client.read(f, offset, nbytes, want_data=True)
                assert got == _expected(model, offset, nbytes), (
                    f"step {step}: mismatch at [{offset}, {offset + nbytes})"
                )

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)
    # the tiny cache guarantees we exercised eviction + write-back
    assert cluster.metrics.count("cache.evictions") > 0
    assert cluster.metrics.count("flusher.blocks_cleaned") > 0


def test_two_processes_same_node_share_consistent_view():
    """Same-node processes share one cache: reads after writes by the
    sibling process are always current (no coherence needed locally)."""
    cluster = make_cluster(compute_nodes=1, iod_nodes=2, cache_blocks=16)
    a = cluster.client("node0")
    b = cluster.client("node0")
    rng = np.random.default_rng(21)
    file_bytes = 128 * 1024
    model = bytearray(file_bytes)
    turn = {"n": 0}

    def worker(env, client, parity):
        f = yield from client.open("/pair")
        for step in range(60):
            # alternate strictly so the model stays a valid oracle
            while turn["n"] % 2 != parity:
                yield env.timeout(1e-5)
            offset = int(rng.integers(0, file_bytes - 8192))
            nbytes = int(rng.integers(1, 8192))
            if rng.random() < 0.5:
                data = bytes([int(rng.integers(1, 255))]) * nbytes
                _apply(model, offset, data)
                yield from client.write(f, offset, nbytes, data)
            else:
                got = yield from client.read(f, offset, nbytes, want_data=True)
                assert got == _expected(model, offset, nbytes), f"step {step}"
            turn["n"] += 1

    env = cluster.env
    procs = [
        env.process(worker(env, a, 0)),
        env.process(worker(env, b, 1)),
    ]
    env.run(until=env.all_of(procs))


def test_sync_writer_remote_reader_coherent():
    """Writer uses sync_write; a cached reader on another node must
    never observe stale data."""
    cluster = make_cluster(compute_nodes=2, iod_nodes=2, cache_blocks=16)
    writer = cluster.client("node0")
    reader = cluster.client("node1")
    rng = np.random.default_rng(3)
    file_bytes = 64 * 1024
    model = bytearray(file_bytes)

    def app(env):
        fw = yield from writer.open("/coh")
        fr = yield from reader.open("/coh")
        for step in range(50):
            offset = int(rng.integers(0, file_bytes - 4096))
            nbytes = int(rng.integers(1, 4096))
            data = bytes([step % 255 + 1]) * nbytes
            _apply(model, offset, data)
            yield from writer.sync_write(fw, offset, nbytes, data)
            got = yield from reader.read(fr, offset, nbytes, want_data=True)
            assert got == _expected(model, offset, nbytes), f"step {step}"

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)
    assert cluster.metrics.count("cache.invalidations_received") > 0


def test_flush_then_raw_read_sees_all_writes():
    """After draining the cache, an uncached reader sees every byte."""
    cluster = make_cluster(compute_nodes=1, iod_nodes=2, cache_blocks=8)
    client = cluster.client("node0")
    raw = cluster.client("node0", use_cache=False)
    rng = np.random.default_rng(11)
    file_bytes = 96 * 1024
    model = bytearray(file_bytes)

    def app(env):
        f = yield from client.open("/drain")
        for _ in range(40):
            offset = int(rng.integers(0, file_bytes - 4096))
            nbytes = int(rng.integers(1, 4096))
            data = bytes([int(rng.integers(1, 255))]) * nbytes
            _apply(model, offset, data)
            yield from client.write(f, offset, nbytes, data)
        yield from cluster.drain_caches()
        got = yield from raw.read(f, 0, file_bytes, want_data=True)
        assert got == bytes(model)

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_mixed_cached_and_raw_writers_after_drain():
    """Interleaved cached/raw writers converge once flushed (single
    node, alternating — the paper's non-coherent default applies to
    cross-node only)."""
    cluster = make_cluster(compute_nodes=1, iod_nodes=1, cache_blocks=8)
    cached = cluster.client("node0")
    raw = cluster.client("node0", use_cache=False)
    file_bytes = 32 * 1024
    model = bytearray(file_bytes)
    rng = np.random.default_rng(13)

    def app(env):
        f = yield from cached.open("/mixed")
        for step in range(30):
            offset = int(rng.integers(0, file_bytes - 2048))
            nbytes = int(rng.integers(1, 2048))
            data = bytes([step + 1]) * nbytes
            _apply(model, offset, data)
            if step % 2 == 0:
                yield from cached.write(f, offset, nbytes, data)
                # drain so the raw writer's next update layers on top
                yield from cluster.drain_caches()
            else:
                yield from raw.write(f, offset, nbytes, data)
                # keep cache coherent with out-of-band write
                for module in cluster.cache_modules.values():
                    last = (offset + nbytes - 1) // 4096
                    for block_no in range(offset // 4096, last + 1):
                        module.manager.invalidate((f.file_id, block_no))
        yield from cluster.drain_caches()
        got = yield from raw.read(f, 0, file_bytes, want_data=True)
        assert got == bytes(model)

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_many_nodes_private_files_no_interference():
    """Each node hammers a private file; contents never cross."""
    cluster = make_cluster(compute_nodes=3, iod_nodes=3, cache_blocks=8)
    results = {}

    def worker(env, node, tag):
        client = cluster.client(node)
        f = yield from client.open(f"/private-{tag}")
        payload = bytes([tag]) * 16384
        yield from client.write(f, 0, 16384, payload)
        got = yield from client.read(f, 0, 16384, want_data=True)
        results[tag] = got == payload

    env = cluster.env
    procs = [
        env.process(worker(env, f"node{i}", i + 1)) for i in range(3)
    ]
    env.run(until=env.all_of(procs))
    assert all(results.values())
    assert len(results) == 3


def test_determinism_of_full_runs():
    """Identical configurations produce bit-identical simulated times."""

    def scenario():
        cluster = make_cluster(compute_nodes=2, iod_nodes=2, cache_blocks=16)
        client = cluster.client("node0")

        def app(env):
            f = yield from client.open("/det")
            for i in range(10):
                yield from client.write(f, i * 8192, 8192, None)
                yield from client.read(f, i * 4096, 8192)
            return env.now

        proc = cluster.env.process(app(cluster.env))
        return cluster.env.run(until=proc)

    assert scenario() == scenario()
