"""Tests for trace recording, serialisation, and replay."""

import io

import pytest

from repro.workload.trace import (
    TraceEvent,
    TraceRecorder,
    TraceReplayer,
    load_trace,
    loads_trace,
)
from tests.conftest import make_cluster


def test_trace_event_validation():
    with pytest.raises(ValueError):
        TraceEvent(0, "p", "/f", "append", 0, 1)
    with pytest.raises(ValueError):
        TraceEvent(0, "p", "/f", "read", -1, 1)


def _record_small_run():
    cluster = make_cluster(caching=True)
    recorder = TraceRecorder(cluster)
    a = recorder.attach(cluster.client("node0"), "app-a")
    b = recorder.attach(cluster.client("node1"), "app-b")

    def worker(env, client, path):
        f = yield from client.open(path)
        yield from client.write(f, 0, 8192, None)
        yield from client.read(f, 0, 8192)
        yield from client.read(f, 4096, 4096)

    env = cluster.env
    procs = [
        env.process(worker(env, a, "/shared")),
        env.process(worker(env, b, "/shared")),
    ]
    env.run(until=env.all_of(procs))
    return cluster, recorder


def test_recorder_captures_all_calls():
    _, recorder = _record_small_run()
    assert len(recorder.events) == 6  # 3 calls x 2 processes
    assert {e.process for e in recorder.events} == {"app-a", "app-b"}
    assert all(e.path == "/shared" for e in recorder.events)
    ops = sorted(e.op for e in recorder.events)
    assert ops.count("write") == 2
    assert ops.count("read") == 4


def test_csv_roundtrip():
    _, recorder = _record_small_run()
    text = recorder.dumps()
    events = loads_trace(text)
    assert len(events) == len(recorder.events)
    original = sorted(recorder.events, key=lambda e: e.time)
    for got, want in zip(events, original):
        assert got.time == pytest.approx(want.time, abs=1e-8)
        assert (got.process, got.path, got.op, got.offset, got.nbytes) == (
            want.process, want.path, want.op, want.offset, want.nbytes
        )


def test_load_trace_rejects_bad_header():
    with pytest.raises(ValueError, match="columns"):
        load_trace(io.StringIO("a,b\n1,2\n"))


def test_replay_runs_same_workload_elsewhere():
    _, recorder = _record_small_run()
    events = loads_trace(recorder.dumps())
    target = make_cluster(caching=False)
    replayer = TraceReplayer(target, events)
    makespan = replayer.run()
    assert makespan > 0
    assert set(replayer.completion) == {"app-a", "app-b"}
    # the replayed requests really hit the target cluster
    assert target.metrics.count("client.reads") == 4
    assert target.metrics.count("client.writes") == 2


def test_replay_placement_control_and_validation():
    _, recorder = _record_small_run()
    events = recorder.events
    target = make_cluster()
    replayer = TraceReplayer(
        target, events, placement={"app-a": "node0", "app-b": "node0"}
    )
    assert replayer.placement["app-b"] == "node0"
    with pytest.raises(ValueError, match="no placement"):
        TraceReplayer(target, events, placement={"app-a": "node0"})


def test_replay_closed_loop_faster_than_open_loop():
    """An open-loop replay keeps the original gaps; closed-loop
    compresses them."""
    cluster = make_cluster()
    recorder = TraceRecorder(cluster)
    client = recorder.attach(cluster.client("node0"), "slow-app")

    def worker(env):
        f = yield from client.open("/f")
        for i in range(3):
            yield from client.read(f, i * 4096, 4096)
            yield env.timeout(0.05)  # long pauses between requests

    env = cluster.env
    proc = env.process(worker(env))
    env.run(until=proc)

    open_loop = TraceReplayer(
        make_cluster(), recorder.events, preserve_timing=True
    ).run()
    closed_loop = TraceReplayer(
        make_cluster(), recorder.events, preserve_timing=False
    ).run()
    assert closed_loop < open_loop / 2


def test_replay_comparing_policies_on_identical_workload():
    """The intended use: same trace, caching on vs off."""
    _, recorder = _record_small_run()
    events = loads_trace(recorder.dumps())
    with_cache = TraceReplayer(
        make_cluster(caching=True), events, preserve_timing=False
    ).run()
    without = TraceReplayer(
        make_cluster(caching=False), events, preserve_timing=False
    ).run()
    # the trace re-reads written data: caching must win
    assert with_cache < without
