"""Tests for the sequential readahead extension."""

import pytest

from repro.cache.prefetch import ReadAhead
from repro.cluster.config import CacheConfig, ClusterConfig
from repro.cluster.cluster import Cluster


def make_ra_cluster(**cache_kw):
    cache = CacheConfig(readahead=True, **cache_kw)
    config = ClusterConfig(
        compute_nodes=1, iod_nodes=1, caching=True, cache=cache
    )
    return Cluster(config)


def test_readahead_window_validation():
    cluster = make_ra_cluster()
    module = cluster.cache_modules["node0"]
    with pytest.raises(ValueError):
        ReadAhead(module, initial_window=0)
    with pytest.raises(ValueError):
        ReadAhead(module, initial_window=8, max_window=4)


def test_readahead_disabled_by_default():
    from tests.conftest import make_cluster

    cluster = make_cluster()
    assert cluster.cache_modules["node0"].readahead is None


def test_sequential_reads_trigger_prefetch():
    cluster = make_ra_cluster()
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/ra")
        # two sequential reads establish the stream
        yield from client.read(f, 0, 8192)
        yield from client.read(f, 8192, 8192)
        assert m.count("prefetch.issued") > 0
        # let the background prefetch land
        yield env.timeout(0.1)
        # the NEXT sequential read should be fully cached
        misses_before = m.count("cache.misses")
        yield from client.read(f, 16384, 8192)
        assert m.count("cache.misses") == misses_before

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)
    assert m.count("prefetch.completed") > 0


def test_random_reads_do_not_prefetch():
    cluster = make_ra_cluster()
    client = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from client.open("/rand")
        for block in (40, 3, 77, 12, 55):
            yield from client.read(f, block * 4096, 4096)
        assert m.count("prefetch.issued") == 0

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_window_doubles_then_resets():
    cluster = make_ra_cluster()
    client = cluster.client("node0")
    module = cluster.cache_modules["node0"]

    def app(env):
        f = yield from client.open("/w")
        yield from client.read(f, 0, 4096)
        yield from client.read(f, 4096, 4096)
        s = module.readahead.stream_state(f.file_id)
        first_window = s.window
        assert first_window >= module.readahead.initial_window
        yield from client.read(f, 8192, 4096)
        assert s.window >= first_window  # grew (or capped)
        # jump far away: reset
        yield from client.read(f, 100 * 4096, 4096)
        assert s.window == 0

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_window_capped_at_max():
    cluster = make_ra_cluster()
    client = cluster.client("node0")
    module = cluster.cache_modules["node0"]

    def app(env):
        f = yield from client.open("/cap")
        for i in range(12):
            yield from client.read(f, i * 4096, 4096)
        s = module.readahead.stream_state(f.file_id)
        assert s.window <= module.readahead.max_window

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_prefetch_reduces_sequential_scan_time():
    """A sequential whole-file scan should be faster with readahead."""

    def scan(readahead: bool) -> float:
        cache = CacheConfig(readahead=readahead)
        config = ClusterConfig(
            compute_nodes=1, iod_nodes=1, caching=True, cache=cache
        )
        cluster = Cluster(config)
        client = cluster.client("node0")

        def app(env):
            f = yield from client.open("/scan")
            t0 = env.now
            for i in range(32):
                yield from client.read(f, i * 16384, 16384)
                # think time lets the background prefetch run ahead
                yield env.timeout(2e-3)
            return env.now - t0

        proc = cluster.env.process(app(cluster.env))
        return cluster.env.run(until=proc)

    plain = scan(False)
    fetched_ahead = scan(True)
    assert fetched_ahead < plain


def test_prefetch_data_integrity():
    """Prefetched blocks must carry the real bytes."""
    cluster = make_ra_cluster()
    client = cluster.client("node0")
    raw = cluster.client("node0", use_cache=False)

    def app(env):
        f = yield from client.open("/ints")
        payload = bytes(range(256)) * 16 * 8  # 32 KB
        yield from raw.write(f, 0, len(payload), payload)
        yield from client.read(f, 0, 4096)
        yield from client.read(f, 4096, 4096)  # triggers prefetch
        yield env.timeout(0.1)
        got = yield from client.read(f, 8192, 8192, want_data=True)
        assert got == payload[8192:16384]

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_prefetch_respects_free_budget():
    """Prefetch never drains more than a quarter of the free pool."""
    cluster = make_ra_cluster(size_bytes=16 * 4096)  # 16 blocks
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/budget")
        yield from client.read(f, 0, 4096)
        yield from client.read(f, 4096, 4096)
        yield env.timeout(0.05)
        module = cluster.cache_modules["node0"]
        # demand blocks (2) + at most a quarter of free for prefetch
        assert module.manager.n_resident <= 2 + 16 // 4 + 1

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_shared_stream_feeds_sibling_process():
    """Inter-application readahead: process A's sequential scan
    prefetches blocks process B then reads for free."""
    cluster = make_ra_cluster()
    a = cluster.client("node0")
    b = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        fa = yield from a.open("/stream")
        fb = yield from b.open("/stream")
        yield from a.read(fa, 0, 8192)
        yield from a.read(fa, 8192, 8192)  # prefetch issued
        yield env.timeout(0.1)
        misses_before = m.count("cache.misses")
        yield from b.read(fb, 16384, 8192)  # B rides A's readahead
        assert m.count("cache.misses") == misses_before

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)
