"""RPC correlation: shared connections, timeouts, and leak detection."""

import pytest

from repro.net import Message, Network, SocketAPI
from repro.sim import Environment
from repro.svc import ChannelPool, PendingCallLeak, RpcChannel, Service

from tests.conftest import make_cluster, run_app


def _pair(env, net):
    api_s = SocketAPI(net, "s")
    api_c = SocketAPI(net, "c")
    listener = api_s.listen(1)
    out = {}

    def srv(env):
        out["server"] = yield listener.accept()

    def cli(env):
        out["client"] = yield env.process(api_c.connect("s", 1))

    env.process(srv(env))
    env.process(cli(env))
    env.run()
    return out["client"], out["server"]


class _StubNode:
    def __init__(self, env, net, name):
        self.env = env
        self.name = name
        self.sockets = SocketAPI(net, name)


# -- correlation on a real shared iod connection ------------------------------


def test_shared_iod_connection_resolves_interleaved_readers():
    """Two apps on one node share the cache module's iod channel; each
    read's ack+data responses must land at the right caller."""
    cluster = make_cluster(compute_nodes=2, iod_nodes=2)
    data_a = b"A" * 16384
    data_b = b"B" * 16384
    writer = cluster.client("node1")

    def seed(env):
        for path, data in (("/a", data_a), ("/b", data_b)):
            handle = yield from writer.open(path)
            yield from writer.write(handle, 0, len(data), data)

    run_app(cluster, seed(cluster.env))
    # Settle all dirty state (the seed's flushes fan out to both iods'
    # writeback daemons) so the strict teardown below has nothing to drop.
    run_app(cluster, cluster.drain_node("node1"))
    for name in cluster.iod_nodes:
        run_app(cluster, cluster.drain_node(name))

    got = {}
    reader = cluster.client("node0")

    def read(path, expect):
        handle = yield from reader.open(path)
        data = yield from reader.read(handle, 0, len(expect), want_data=True)
        got[path] = data

    procs = [
        cluster.env.process(read("/a", data_a)),
        cluster.env.process(read("/b", data_b)),
    ]
    cluster.env.run(until=cluster.env.all_of(procs))
    assert got == {"/a": data_a, "/b": data_b}

    module = cluster.cache_modules["node0"]
    assert module._iod_pool.outstanding == 0  # every call closed

    # Clean workload -> strict teardown finds no leaked calls anywhere.
    for report in cluster.stop_services(strict=True):
        for entry in report.flat():
            assert entry.total_dropped == 0, entry


def test_out_of_order_responses_with_timeouts_armed():
    """Reverse-order replies land correctly even on deadline-armed calls."""
    env = Environment()
    net = Network(env)
    client, server = _pair(env, net)
    channel = RpcChannel(client)
    got = {}

    def cli(env):
        c1 = channel.call(Message(kind="q1", size_bytes=10), timeout_s=5.0)
        c2 = channel.call(Message(kind="q2", size_bytes=10), timeout_s=5.0)
        r2 = yield c2.response()
        r1 = yield c1.response()
        got["r1"], got["r2"] = r1.kind, r2.kind
        c1.close()
        c2.close()

    def srv(env):
        m1 = yield server.recv()
        m2 = yield server.recv()
        yield server.send(m2.reply("a2", 10))
        yield server.send(m1.reply("a1", 10))

    env.process(cli(env))
    env.process(srv(env))
    env.run()
    assert got == {"r1": "a1", "r2": "a2"}
    assert channel.outstanding == 0
    assert channel.timed_out == 0  # both answered well before deadline


# -- timeouts -----------------------------------------------------------------


def test_timeout_hook_fires_for_silent_server():
    env = Environment()
    net = Network(env)
    client, _server = _pair(env, net)
    channel = RpcChannel(client)
    fired = []

    call = channel.call(
        Message(kind="lost", size_bytes=10),
        timeout_s=0.5,
        on_timeout=fired.append,
    )
    env.run()
    assert fired == [call]
    assert channel.timed_out == 1
    assert call.pending  # the hook observes, it does not cancel
    # Deadline counts from call() (shortly after the handshake).
    assert env.now == pytest.approx(0.5, abs=1e-2)


def test_timeout_hook_suppressed_after_first_response():
    env = Environment()
    net = Network(env)
    client, server = _pair(env, net)
    channel = RpcChannel(client)
    fired = []

    def srv(env):
        req = yield server.recv()
        yield server.send(req.reply("ack", 8))

    def cli(env):
        call = channel.call(
            Message(kind="fast", size_bytes=10),
            timeout_s=5.0,
            on_timeout=fired.append,
        )
        yield call.response()
        call.close()

    env.process(srv(env))
    env.process(cli(env))
    env.run()
    assert fired == []
    assert channel.timed_out == 0


# -- leak detection at teardown -----------------------------------------------


def test_unanswered_call_surfaces_pending_call_leak():
    env = Environment()
    net = Network(env)
    client, _server = _pair(env, net)
    channel = RpcChannel(client, label="iod-link")
    channel.call(Message(kind="orphaned-read", size_bytes=10))
    env.run()  # server never answers; sim goes quiet instead of hanging
    assert channel.outstanding == 1
    with pytest.raises(PendingCallLeak, match=r"orphaned-read"):
        channel.close(strict=True)
    # The dispatcher really died even though close() raised.
    assert not channel._dispatcher.is_alive
    assert channel.outstanding == 0


def test_lenient_close_discards_pending_calls():
    env = Environment()
    net = Network(env)
    client, _server = _pair(env, net)
    channel = RpcChannel(client)
    channel.call(Message(kind="dropped", size_bytes=10))
    env.run()
    channel.close()  # strict=False: no raise
    assert channel.outstanding == 0


def test_pool_strict_close_aggregates_leaks():
    env = Environment()
    net = Network(env)
    server_api = SocketAPI(net, "peer")
    server_api.listen(9)  # accept but never answer
    node = _StubNode(env, net, "origin")
    pool = ChannelPool(node, 9, "test-pool")

    def cli(env):
        channel = yield from pool.channel("peer")
        channel.call(Message(kind="unanswered", size_bytes=10))

    env.run(until=env.process(cli(env)))
    assert pool.outstanding == 1
    with pytest.raises(PendingCallLeak, match=r"unanswered"):
        pool.close(strict=True)


def test_service_strict_stop_surfaces_leak():
    env = Environment()
    net = Network(env)
    server_api = SocketAPI(net, "peer")
    server_api.listen(9)
    service = Service(env, "leaky", node=_StubNode(env, net, "origin"))
    service.start()
    pool = service.pool(9, "leaky-pool")

    def cli(env):
        channel = yield from pool.channel("peer")
        channel.call(Message(kind="never-answered", size_bytes=10))

    env.run(until=env.process(cli(env)))
    with pytest.raises(PendingCallLeak, match=r"never-answered"):
        service.stop(strict=True)
    # The raise happened after teardown: the service is fully stopped.
    assert service.state.value == "stopped"
