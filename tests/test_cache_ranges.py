"""Unit + property tests for ByteRanges (interval sets)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.ranges import ByteRanges


def test_empty():
    r = ByteRanges()
    assert r.is_empty()
    assert not r
    assert r.total == 0
    assert r.intervals == ()
    assert r.covers(5, 5)  # empty range always covered


def test_add_single():
    r = ByteRanges()
    r.add(10, 20)
    assert r.intervals == ((10, 20),)
    assert r.total == 10
    assert r.covers(10, 20)
    assert r.covers(12, 15)
    assert not r.covers(9, 11)
    assert not r.covers(19, 21)


def test_add_zero_length_noop():
    r = ByteRanges()
    r.add(5, 5)
    assert r.is_empty()


def test_add_inverted_raises():
    r = ByteRanges()
    with pytest.raises(ValueError):
        r.add(10, 5)
    with pytest.raises(ValueError):
        r.remove(10, 5)


def test_add_merges_overlap():
    r = ByteRanges([(0, 10), (5, 15)])
    assert r.intervals == ((0, 15),)


def test_add_merges_adjacent():
    r = ByteRanges([(0, 10), (10, 20)])
    assert r.intervals == ((0, 20),)


def test_add_keeps_disjoint():
    r = ByteRanges([(0, 5), (10, 15)])
    assert r.intervals == ((0, 5), (10, 15))


def test_add_bridges_many():
    r = ByteRanges([(0, 5), (10, 15), (20, 25)])
    r.add(4, 21)
    assert r.intervals == ((0, 25),)


def test_add_insert_in_middle():
    r = ByteRanges([(0, 2), (10, 12)])
    r.add(5, 6)
    assert r.intervals == ((0, 2), (5, 6), (10, 12))


def test_remove_middle_splits():
    r = ByteRanges([(0, 10)])
    r.remove(3, 6)
    assert r.intervals == ((0, 3), (6, 10))


def test_remove_edges():
    r = ByteRanges([(0, 10)])
    r.remove(0, 3)
    assert r.intervals == ((3, 10),)
    r.remove(8, 10)
    assert r.intervals == ((3, 8),)


def test_remove_everything():
    r = ByteRanges([(0, 10), (20, 30)])
    r.remove(0, 30)
    assert r.is_empty()


def test_remove_disjoint_noop():
    r = ByteRanges([(0, 10)])
    r.remove(20, 30)
    assert r.intervals == ((0, 10),)


def test_gaps_basic():
    r = ByteRanges([(2, 4), (6, 8)])
    assert r.gaps(0, 10) == [(0, 2), (4, 6), (8, 10)]
    assert r.gaps(2, 8) == [(4, 6)]
    assert r.gaps(2, 4) == []
    assert r.gaps(0, 1) == [(0, 1)]


def test_gaps_empty_set():
    r = ByteRanges()
    assert r.gaps(3, 9) == [(3, 9)]


def test_intersect():
    r = ByteRanges([(2, 4), (6, 8)])
    assert r.intersect(0, 10) == [(2, 4), (6, 8)]
    assert r.intersect(3, 7) == [(3, 4), (6, 7)]
    assert r.intersect(4, 6) == []


def test_clear():
    r = ByteRanges([(0, 5)])
    r.clear()
    assert r.is_empty()


def test_equality():
    assert ByteRanges([(0, 5)]) == ByteRanges([(0, 3), (3, 5)])
    assert ByteRanges() != ByteRanges([(0, 1)])
    assert ByteRanges().__eq__(42) is NotImplemented


def test_repr():
    assert "0, 5" in repr(ByteRanges([(0, 5)]))


# -- property tests ------------------------------------------------------

intervals_strategy = st.lists(
    st.tuples(st.integers(0, 100), st.integers(0, 100)).map(
        lambda t: (min(t), max(t))
    ),
    max_size=12,
)


def _model(ops):
    """Reference model: a set of covered integers."""
    covered = set()
    for op, (a, b) in ops:
        if op == "add":
            covered |= set(range(a, b))
        else:
            covered -= set(range(a, b))
    return covered


ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove"]),
        st.tuples(st.integers(0, 60), st.integers(0, 60)).map(
            lambda t: (min(t), max(t))
        ),
    ),
    max_size=15,
)


@settings(max_examples=200)
@given(ops=ops_strategy)
def test_property_matches_set_model(ops):
    r = ByteRanges()
    for op, (a, b) in ops:
        if op == "add":
            r.add(a, b)
        else:
            r.remove(a, b)
    covered = _model(ops)
    got = set()
    for s, e in r.intervals:
        got |= set(range(s, e))
    assert got == covered
    assert r.total == len(covered)


@settings(max_examples=200)
@given(ivals=intervals_strategy)
def test_property_invariants_sorted_disjoint(ivals):
    r = ByteRanges(ivals)
    out = r.intervals
    for s, e in out:
        assert s < e  # no empties stored
    for (s1, e1), (s2, e2) in zip(out, out[1:]):
        assert e1 < s2  # disjoint AND non-adjacent (merged)


@settings(max_examples=200)
@given(
    ivals=intervals_strategy,
    probe=st.tuples(st.integers(0, 100), st.integers(0, 100)),
)
def test_property_gaps_partition_probe(ivals, probe):
    """gaps + intersect exactly tile any probe window."""
    lo, hi = min(probe), max(probe)
    r = ByteRanges(ivals)
    pieces = sorted(r.gaps(lo, hi) + r.intersect(lo, hi))
    cursor = lo
    for s, e in pieces:
        assert s == cursor
        assert e > s
        cursor = e
    assert cursor == hi or (lo == hi and not pieces)


@settings(max_examples=100)
@given(ivals=intervals_strategy)
def test_property_covers_iff_no_gaps(ivals):
    r = ByteRanges(ivals)
    for s, e in list(r.intervals)[:4]:
        assert r.covers(s, e)
        assert r.gaps(s, e) == []
