"""The custom sim lint: every rule fires on the seeded fixture, the
real source tree stays clean, and ``noqa`` suppression works."""

from pathlib import Path

from repro.analysis.lint import lint_paths, main

FIXTURE = Path(__file__).parent / "data" / "lint_fixture.py"
SRC_TREE = Path(__file__).resolve().parents[1] / "src" / "repro"

ALL_CODES = {
    "RPL001", "RPL002", "RPL003", "RPL004", "RPL005", "RPL006", "RPL007",
}


def test_fixture_trips_every_rule():
    findings = lint_paths([FIXTURE])
    assert {f.code for f in findings} == ALL_CODES


def test_fixture_exits_nonzero(capsys):
    assert main([str(FIXTURE)]) == 1
    out = capsys.readouterr().out
    assert "RPL001" in out
    assert "finding(s)" in out


def test_findings_point_at_the_hazard_lines():
    source = FIXTURE.read_text().splitlines()
    for finding in lint_paths([FIXTURE]):
        flagged = source[finding.line - 1]
        assert finding.code[:3] == "RPL"
        # every seeded hazard line is marked with its code
        assert finding.code in flagged, (finding, flagged)


def test_noqa_suppresses():
    findings = [f for f in lint_paths([FIXTURE]) if f.code == "RPL004"]
    # 'shared_registry' is flagged; 'suppressed_registry' carries a noqa
    assert len(findings) == 1
    assert "shared_registry" in findings[0].message


def test_source_tree_is_clean(capsys):
    assert main([str(SRC_TREE)]) == 0
    assert "clean" in capsys.readouterr().out


def test_registered_reset_hook_satisfies_rpl004(tmp_path):
    good = tmp_path / "good.py"
    good.write_text(
        "import itertools\n"
        "from repro.analysis.reset import register_reset\n"
        "\n"
        "_ids = itertools.count(1)\n"
        "\n"
        "\n"
        "def _reset_ids():\n"
        "    global _ids\n"
        "    _ids = itertools.count(1)\n"
        "\n"
        "\n"
        "register_reset(_reset_ids)\n"
    )
    assert lint_paths([good]) == []


def test_plain_helper_statement_not_flagged(tmp_path):
    mod = tmp_path / "plain.py"
    mod.write_text(
        "def plain(x):\n"
        "    return x + 1\n"
        "\n"
        "\n"
        "def caller():\n"
        "    plain(1)\n"
    )
    assert lint_paths([mod]) == []


def test_rpl006_flags_heapq_outside_sim(tmp_path):
    mod = tmp_path / "scheduler.py"
    mod.write_text("from heapq import heappush\nimport heapq\n")
    findings = lint_paths([mod])
    assert [f.code for f in findings] == ["RPL006", "RPL006"]
    assert "repro.sim" in findings[0].message


def test_rpl006_exempts_the_engine_package(tmp_path):
    simdir = tmp_path / "repro" / "sim"
    simdir.mkdir(parents=True)
    engine = simdir / "engine.py"
    engine.write_text("import heapq\nheapq.heapify([])\n")
    assert lint_paths([engine]) == []


def test_rpl007_flags_shard_reach_through(tmp_path):
    mod = tmp_path / "harness.py"
    mod.write_text(
        "def poke(runner, i):\n"
        "    runner.shards[i].env.schedule(None)\n"
        "    return self_shards_alias(runner)\n"
        "\n"
        "\n"
        "def self_shards_alias(runner):\n"
        "    return runner._shards[0].cluster\n"
    )
    findings = [f for f in lint_paths([mod]) if f.code == "RPL007"]
    assert len(findings) == 2
    assert "mailbox" in findings[0].message


def test_rpl007_allows_the_mailbox_api(tmp_path):
    mod = tmp_path / "harness.py"
    mod.write_text(
        "def route(runner, i, envelopes):\n"
        "    return runner.shards[i].mailbox\n"
    )
    assert [f.code for f in lint_paths([mod])] == []


def test_rpl007_exempts_the_engine_package(tmp_path):
    simdir = tmp_path / "repro" / "sim"
    simdir.mkdir(parents=True)
    par = simdir / "parallel.py"
    par.write_text(
        "def drive(shards):\n"
        "    return shards[0].env\n"
    )
    assert lint_paths([par]) == []
