"""Unit tests for the clock (approximate LRU) and exact-LRU policies."""

import pytest

from repro.cache.block import BlockState, CacheBlock
from repro.cache.clock import ClockPolicy, ExactLRUPolicy
from repro.sim import Environment


def _clean_block(env, index):
    b = CacheBlock(index, 4096)
    b.assign((1, index), env.event())
    b.make_ready()
    b.refbit = False
    return b


def _dirty_block(env, index):
    b = CacheBlock(index, 4096)
    b.assign((1, index), env.event())
    b.write(0, 10, None)
    b.refbit = False
    return b


@pytest.fixture(params=[ClockPolicy, ExactLRUPolicy])
def policy_cls(request):
    return request.param


def test_empty_policy_returns_nothing(policy_cls):
    p = policy_cls()
    assert p.select_victims(5) == []
    assert len(p) == 0


def test_select_nonpositive(policy_cls):
    env = Environment()
    p = policy_cls()
    p.admit(_clean_block(env, 0))
    assert p.select_victims(0) == []


def test_admit_and_select(policy_cls):
    env = Environment()
    p = policy_cls()
    blocks = [_clean_block(env, i) for i in range(5)]
    for b in blocks:
        p.admit(b)
        b.refbit = False
    victims = p.select_victims(3)
    assert len(victims) == 3
    assert all(v in blocks for v in victims)


def test_forget_removes(policy_cls):
    env = Environment()
    p = policy_cls()
    b = _clean_block(env, 0)
    p.admit(b)
    p.forget(b)
    assert p.select_victims(1) == []
    p.forget(b)  # idempotent


def test_pinned_and_pending_never_selected(policy_cls):
    env = Environment()
    p = policy_cls()
    pinned = _clean_block(env, 0)
    pinned.pin()
    pending = CacheBlock(1, 4096)
    pending.assign((1, 1), env.event())
    pending.refbit = False
    for b in (pinned, pending):
        p.admit(b)
        b.refbit = False
    assert p.select_victims(2) == []


def test_clean_preferred_over_dirty(policy_cls):
    env = Environment()
    p = policy_cls()
    dirty = _dirty_block(env, 0)
    clean = _clean_block(env, 1)
    for b in (dirty, clean):
        p.admit(b)
        b.refbit = False
    victims = p.select_victims(1, prefer_clean=True)
    assert victims == [clean]


def test_dirty_fallback_when_no_clean(policy_cls):
    env = Environment()
    p = policy_cls()
    dirty = _dirty_block(env, 0)
    p.admit(dirty)
    dirty.refbit = False
    assert p.select_victims(1, prefer_clean=True) == [dirty]


def test_prefer_clean_false_takes_any(policy_cls):
    env = Environment()
    p = policy_cls()
    dirty = _dirty_block(env, 0)
    p.admit(dirty)
    dirty.refbit = False
    assert p.select_victims(1, prefer_clean=False) == [dirty]


# -- clock specifics ------------------------------------------------------


def test_clock_second_chance():
    env = Environment()
    p = ClockPolicy()
    a = _clean_block(env, 0)
    b = _clean_block(env, 1)
    p.admit(a)  # admit sets refbit
    p.admit(b)
    b.refbit = False  # a referenced, b not
    victims = p.select_victims(1)
    assert victims == [b]  # a got its second chance
    assert a.refbit is False  # ...but lost its reference bit


def test_clock_touch_sets_refbit_only():
    env = Environment()
    p = ClockPolicy()
    a = _clean_block(env, 0)
    p.admit(a)
    a.refbit = False
    p.touch(a)
    assert a.refbit
    assert len(p) == 1  # no duplicate ring entries


def test_clock_forget_adjusts_hand():
    env = Environment()
    p = ClockPolicy()
    blocks = [_clean_block(env, i) for i in range(4)]
    for b in blocks:
        p.admit(b)
        b.refbit = False
    p.select_victims(1)  # advances hand
    p.forget(blocks[0])
    # remaining selections still work without index errors
    victims = p.select_victims(3)
    assert len(victims) == 3 - 1 + 1  # 3 remaining blocks


def test_clock_early_exit_when_nothing_evictable():
    env = Environment()
    p = ClockPolicy()
    blocks = [_clean_block(env, i) for i in range(10)]
    for b in blocks:
        p.admit(b)
        b.refbit = False
        b.pin()
    assert p.select_victims(5) == []


# -- exact LRU specifics ----------------------------------------------------


def test_exact_lru_order():
    env = Environment()
    p = ExactLRUPolicy()
    a, b, c = (_clean_block(env, i) for i in range(3))
    for blk in (a, b, c):
        p.admit(blk)
    p.touch(a)  # order now: b, c, a
    assert p.select_victims(2) == [b, c]


def test_exact_lru_victims_in_lru_order():
    env = Environment()
    p = ExactLRUPolicy()
    blocks = [_clean_block(env, i) for i in range(5)]
    for b in blocks:
        p.admit(b)
    assert p.select_victims(5) == blocks
