"""Documentation quality gate: every public item carries a docstring.

Deliverable (e) of the reproduction requires doc comments on every
public item; this test enforces it structurally so regressions fail CI
rather than review.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
]


def _public_members(module):
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if inspect.getmodule(obj) is not module:
            continue  # re-exports documented at their home
        if inspect.isclass(obj) or inspect.isfunction(obj):
            yield name, obj


def test_every_module_has_docstring():
    missing = []
    for name in MODULES:
        module = importlib.import_module(name)
        if not (module.__doc__ or "").strip():
            missing.append(name)
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_and_function_documented():
    missing = []
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for name, obj in _public_members(module):
            if not (obj.__doc__ or "").strip():
                missing.append(f"{module_name}.{name}")
    assert not missing, f"undocumented public items: {missing}"


def test_public_methods_documented():
    """Public methods of public classes need docstrings too (dataclass
    auto-generated members excluded)."""
    missing = []
    for module_name in MODULES:
        module = importlib.import_module(module_name)
        for cls_name, cls in _public_members(module):
            if not inspect.isclass(cls):
                continue
            for name, member in vars(cls).items():
                if name.startswith("_"):
                    continue
                if not (inspect.isfunction(member) or isinstance(member, property)):
                    continue
                doc = (
                    member.fget.__doc__
                    if isinstance(member, property) and member.fget
                    else getattr(member, "__doc__", None)
                )
                if not (doc or "").strip():
                    missing.append(f"{module_name}.{cls_name}.{name}")
    assert not missing, f"undocumented public methods: {missing}"


def test_packages_importable():
    for name in MODULES:
        importlib.import_module(name)
