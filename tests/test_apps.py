"""Tests for the application benchmark suite."""

import pytest

from repro.workload.apps import (
    ArchiveMaintainer,
    AssociationMiningScan,
    BaseApp,
    OutOfCoreMatrixMultiply,
    VideoFrameExtractor,
    analysis_cycle_mix,
    run_app_mix,
)
from repro.workload.classify import SharingClassifier, TraceCollector
from tests.conftest import make_cluster


def test_base_app_run_is_abstract():
    cluster = make_cluster()
    app = BaseApp(cluster, "node0")
    with pytest.raises(NotImplementedError):
        next(iter(app.run()))


def test_ooc_matmul_completes_and_counts_requests():
    cluster = make_cluster()
    app = OutOfCoreMatrixMultiply(cluster, "node0", tiles=3)
    (result,) = run_app_mix(cluster, [app])
    # per row panel: 1 A read + tiles B reads + 1 C write
    assert result.requests == 3 * (1 + 3 + 1)
    assert result.elapsed_s > 0


def test_ooc_matmul_benefits_from_cache():
    """B's panels are re-read: caching must beat no caching."""

    def elapsed(caching):
        cluster = make_cluster(compute_nodes=1, iod_nodes=2, caching=caching)
        app = OutOfCoreMatrixMultiply(cluster, "node0", tiles=3)
        return run_app_mix(cluster, [app])[0].elapsed_s

    assert elapsed(True) < elapsed(False)


def test_mining_scan_multi_pass_locality():
    """Passes 2..k re-read pass 1's data: big caching win when the
    dataset fits the cache."""

    def elapsed(caching):
        cluster = make_cluster(compute_nodes=1, iod_nodes=2, caching=caching)
        app = AssociationMiningScan(
            cluster, "node0", dataset_bytes=512 * 1024, passes=5
        )
        return run_app_mix(cluster, [app])[0].elapsed_s

    assert elapsed(True) < elapsed(False) * 0.8


def test_video_extractor_stride_coverage():
    cluster = make_cluster()
    app = VideoFrameExtractor(
        cluster, "node0", frames=6, stride=2, offset_frames=1
    )
    (result,) = run_app_mix(cluster, [app])
    assert result.requests == 6


def test_two_video_extractors_interleave_disjointly():
    """Stride-2 extractors with offsets 0/1 touch disjoint frames."""
    cluster = make_cluster(compute_nodes=2, iod_nodes=2)
    classifier = SharingClassifier()
    apps = []
    for i, node in enumerate(("node0", "node1")):
        app = VideoFrameExtractor(
            cluster, node, frames=6, stride=2, offset_frames=i,
            name=f"vx-{i}",
        )
        app.client.trace_sink = TraceCollector(classifier)
        apps.append(app)
    run_app_mix(cluster, apps)
    handle = cluster.mgr.lookup("/video/stream")
    assert classifier.classify(handle.file_id) == "disjoint"


def test_archive_maintainer_producer_consumer_on_itself():
    cluster = make_cluster(compute_nodes=1, iod_nodes=1)
    app = ArchiveMaintainer(cluster, "node0", batches=8)
    (result,) = run_app_mix(cluster, [app])
    # 8 writes + 2 index reads (every 4 batches)
    assert result.requests == 10


def test_shared_miners_classify_read_shared():
    cluster = make_cluster(compute_nodes=2, iod_nodes=2)
    classifier = SharingClassifier()
    apps = []
    for i, node in enumerate(("node0", "node1")):
        app = AssociationMiningScan(
            cluster, node, dataset_bytes=128 * 1024, passes=1,
            name=f"miner-{i}",
        )
        app.client.trace_sink = TraceCollector(classifier)
        apps.append(app)
    run_app_mix(cluster, apps)
    handle = cluster.mgr.lookup("/mining/transactions")
    assert classifier.classify(handle.file_id) == "read-shared"


def test_analysis_cycle_mix_builds_and_runs():
    cluster = make_cluster(compute_nodes=2, iod_nodes=2)
    apps = analysis_cycle_mix(cluster, ["node0", "node1"])
    assert len(apps) == 6
    results = run_app_mix(cluster, apps)
    assert len(results) == 6
    assert all(r.elapsed_s >= 0 and r.requests > 0 for r in results)
    names = {r.name for r in results}
    assert {"archiver", "miner", "miner-2", "solver"} <= names


def test_app_mix_caching_beats_no_caching():
    """The whole Figure-1-style mix benefits from the shared cache.

    Pinned to the frames network model: the claim's ~3% margin on this
    tiny mix is within the documented frames/fluid contention-model
    tolerance, so it is only asserted under the validated model
    (DESIGN.md §12).
    """

    def total(caching):
        cluster = make_cluster(
            compute_nodes=2, iod_nodes=2, caching=caching,
            net_model="frames",
        )
        apps = analysis_cycle_mix(cluster, ["node0", "node1"])
        results = run_app_mix(cluster, apps)
        return max(r.elapsed_s for r in results)

    assert total(True) < total(False)


def test_app_results_recorded_in_metrics():
    cluster = make_cluster()
    app = VideoFrameExtractor(cluster, "node0", frames=3, name="vid")
    run_app_mix(cluster, [app])
    assert cluster.metrics.samples("app.vid.elapsed")
