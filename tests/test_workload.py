"""Tests for the micro-benchmark access pattern and application."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workload.pattern import AccessPattern
from repro.workload.microbench import MicroBenchmark, MicroBenchParams
from repro.workload.runner import run_instances
from repro.cluster.config import ClusterConfig
from tests.conftest import make_cluster


# -- AccessPattern --------------------------------------------------------


def _pattern(**kw):
    defaults = dict(
        request_size=4096,
        partition_start=0,
        partition_bytes=65536,
        locality=0.0,
        sharing=0.0,
        seed=1,
    )
    defaults.update(kw)
    return AccessPattern(**defaults)


def test_pattern_validation():
    with pytest.raises(ValueError):
        _pattern(request_size=0)
    with pytest.raises(ValueError):
        _pattern(partition_bytes=100, request_size=4096)
    with pytest.raises(ValueError):
        _pattern(locality=1.5)
    with pytest.raises(ValueError):
        _pattern(sharing=-0.1)


def test_zero_locality_all_fresh_sequential():
    p = _pattern(locality=0.0)
    descs = list(p.stream(8))
    assert all(d.fresh for d in descs)
    assert [d.offset for d in descs] == [i * 4096 for i in range(8)]


def test_full_locality_repeats_first_offset():
    p = _pattern(locality=1.0)
    descs = list(p.stream(10))
    assert descs[0].fresh
    assert all(not d.fresh for d in descs[1:])
    assert all(d.offset == descs[0].offset for d in descs)


def test_partition_start_respected():
    p = _pattern(partition_start=1 << 20)
    desc = p.next()
    assert desc.offset == 1 << 20


def test_wrapping_at_partition_end():
    p = _pattern(partition_bytes=3 * 4096)
    offsets = [p.next().offset for _ in range(6)]
    assert offsets == [0, 4096, 8192, 0, 4096, 8192]


def test_sharing_zero_all_private():
    p = _pattern(sharing=0.0)
    assert all(d.target == "private" for d in p.stream(20))


def test_sharing_one_all_shared():
    p = _pattern(sharing=1.0)
    assert all(d.target == "shared" for d in p.stream(20))


def test_mixed_sharing_statistics():
    p = _pattern(sharing=0.5, seed=7)
    targets = [d.target for d in p.stream(500)]
    shared_fraction = targets.count("shared") / len(targets)
    assert 0.4 < shared_fraction < 0.6


def test_mixed_locality_statistics():
    p = _pattern(locality=0.7, seed=7, partition_bytes=1 << 22)
    descs = list(p.stream(500))
    revisit_fraction = sum(1 for d in descs if not d.fresh) / len(descs)
    assert 0.6 < revisit_fraction < 0.8


def test_deterministic_given_seed():
    def pat():
        return _pattern(locality=0.5, sharing=0.5, seed=3)

    a = [(d.target, d.offset) for d in pat().stream(50)]
    b = [(d.target, d.offset) for d in pat().stream(50)]
    assert a == b


def test_per_target_cursors_independent():
    p = _pattern(sharing=0.5, seed=11)
    descs = list(p.stream(100))
    for target in ("shared", "private"):
        fresh_offsets = [d.offset for d in descs if d.target == target and d.fresh]
        assert fresh_offsets == sorted(fresh_offsets) or len(
            set(fresh_offsets)
        ) < len(fresh_offsets)
        # sequential walk: consecutive fresh offsets advance by d
        for a, b in zip(fresh_offsets, fresh_offsets[1:]):
            assert (b - a) % 4096 == 0


@settings(max_examples=50)
@given(
    locality=st.floats(0, 1),
    sharing=st.floats(0, 1),
    seed=st.integers(0, 1000),
)
def test_property_offsets_stay_in_partition(locality, sharing, seed):
    p = _pattern(
        locality=locality, sharing=sharing, seed=seed,
        partition_start=8192, partition_bytes=65536,
    )
    for d in p.stream(100):
        assert 8192 <= d.offset < 8192 + 65536
        assert d.offset + d.nbytes <= 8192 + 65536 + 4096  # within partition hull
        assert d.nbytes == 4096


# -- MicroBenchParams ------------------------------------------------------


def test_params_validation():
    with pytest.raises(ValueError):
        MicroBenchParams(nodes=[], request_size=4096, iterations=1)
    with pytest.raises(ValueError):
        MicroBenchParams(nodes=["n"], request_size=4096, iterations=0)
    with pytest.raises(ValueError):
        MicroBenchParams(nodes=["n"], request_size=4096, iterations=1, mode="append")


def test_params_derived_values():
    p = MicroBenchParams(
        nodes=["a", "b"], request_size=1024, iterations=10, instance=3
    )
    assert p.p == 2
    assert p.total_bytes_per_process == 10240
    assert p.private_path == "/private/instance-3"


def test_makespan_before_finish_raises():
    p = MicroBenchParams(nodes=["a"], request_size=1024, iterations=1)
    bench = MicroBenchmark(p)
    with pytest.raises(RuntimeError):
        _ = bench.makespan


# -- end-to-end benchmark runs -----------------------------------------------


def test_run_instances_read_mode():
    config = ClusterConfig(compute_nodes=2, iod_nodes=2, caching=True)
    params = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=16384,
        iterations=4,
        mode="read",
        locality=0.5,
        partition_bytes=1 << 20,
    )
    out = run_instances(config, [params])
    assert out.makespan > 0
    assert len(out.instances) == 1
    assert set(out.instances[0].per_rank) == {0, 1}
    assert out.counter("client.reads") == 8
    assert 0 <= out.cache_hit_ratio <= 1


def test_run_instances_write_and_sync_modes():
    config = ClusterConfig(compute_nodes=1, iod_nodes=1, caching=True)
    for mode, counter in (
        ("write", "client.writes"),
        ("sync-write", "client.sync_writes"),
    ):
        params = MicroBenchParams(
            nodes=["node0"], request_size=8192, iterations=3, mode=mode,
            partition_bytes=1 << 20,
        )
        out = run_instances(config, [params])
        assert out.counter(counter) == 3


def test_two_instances_sharing_produces_cross_hits():
    config = ClusterConfig(compute_nodes=2, iod_nodes=2, caching=True)
    insts = [
        MicroBenchParams(
            nodes=config.compute_node_names(), request_size=16384,
            iterations=8, mode="read", sharing=1.0, instance=i,
            partition_bytes=1 << 20, seed=5 + i,
        )
        for i in range(2)
    ]
    out = run_instances(config, insts)
    assert out.counter("cache.hits") > 0
    assert len(out.instances) == 2


def test_want_data_roundtrip_through_benchmark():
    """Payload mode: written bytes must read back identically."""
    config = ClusterConfig(compute_nodes=1, iod_nodes=1, caching=True)
    w = MicroBenchParams(
        nodes=["node0"], request_size=8192, iterations=4, mode="write",
        locality=0.0, partition_bytes=1 << 20, want_data=True,
    )
    out = run_instances(config, [w])
    cluster = out.cluster

    def verify(env):
        client = cluster.client("node0", use_cache=True)
        f = yield from client.open(w.private_path)
        data = yield from client.read(f, 0, 8192, want_data=True)
        expected = MicroBenchmark._payload(0, 8192)
        assert data == expected

    proc = cluster.env.process(verify(cluster.env))
    cluster.env.run(until=proc)


def test_warmup_does_not_pollute_metrics():
    config = ClusterConfig(compute_nodes=1, iod_nodes=1, caching=False)
    params = MicroBenchParams(
        nodes=["node0"], request_size=16384, iterations=2, mode="read",
        partition_bytes=1 << 20, warmup=True,
    )
    out = run_instances(config, [params])
    assert out.counter("client.reads") == 2  # warmup reads unrecorded
