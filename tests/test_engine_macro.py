"""The macro-event read fast path (DESIGN.md §14).

Off (the default) the schedule is the validated event-level one —
bit-identical trace hashes.  On, a fully-cache-resident uncontended
read collapses into a single scheduled event but must take the same
simulated time and mirror the per-segment cache counters, so the
figure-level hit/latency numbers stay comparable across the seam.
"""

import pytest

from repro.analysis.determinism import fig4_point_trace_hash
from repro.cluster.cluster import Cluster
from repro.cluster.config import ENGINE_MACRO_ENV_VAR, ClusterConfig

N_READS = 400
READ_BYTES = 4096
REGION = 128 * 1024


def _hit_burst_replay(engine_macro: bool) -> dict:
    """Write a resident region, re-read it in full-hit requests."""
    cluster = Cluster(
        ClusterConfig(compute_nodes=1, iod_nodes=1, engine_macro=engine_macro)
    )
    env = cluster.env
    client = cluster.client("node0")

    def setup(env):
        handle = yield from client.open("/hot")
        yield from client.write(handle, 0, REGION)
        return handle

    setup_proc = env.process(setup(env))
    env.run(until=setup_proc)
    handle = setup_proc.value

    def reader(env):
        data = []
        for i in range(N_READS):
            buf = yield from client.read(
                handle,
                (i * READ_BYTES) % REGION,
                READ_BYTES,
                want_data=True,
            )
            data.append(buf)
        return data

    events_before = env.sched_stats()["events_processed"]
    read_proc = env.process(reader(env))
    env.run(until=read_proc)
    stats = env.sched_stats()
    counters = cluster.metrics.counters
    return {
        "makespan": env.now,
        "data": read_proc.value,
        "events": stats["events_processed"] - events_before,
        "bursts": stats["bursts_coalesced"],
        "hits": counters.get("cache.hits", 0),
        "read_requests": counters.get("cache.read_requests", 0),
        "read_segments": counters.get("cache.read_segments", 0),
        "fully_hit_segments": counters.get("cache.fully_hit_segments", 0),
        "macro_reads": counters.get("cache.macro_reads", 0),
    }


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(ENGINE_MACRO_ENV_VAR, raising=False)


def test_macro_matches_event_level_on_hit_bursts():
    off = _hit_burst_replay(engine_macro=False)
    on = _hit_burst_replay(engine_macro=True)
    # Identical simulated outcome: the single macro timeout charges
    # exactly the compute the event-level train accrues.  Summing n
    # per-segment timeouts vs one multiplied total differs only by
    # float associativity, so allow ulp-level drift.
    assert on["makespan"] == pytest.approx(off["makespan"], abs=1e-12)
    assert on["data"] == off["data"]
    # Mirrored counters, so hit-ratio figures agree across the seam.
    for key in (
        "hits",
        "read_requests",
        "read_segments",
        "fully_hit_segments",
    ):
        assert on[key] == off[key], key
    # But far fewer events — the whole point of the fast path.
    assert on["macro_reads"] == N_READS
    assert on["bursts"] == N_READS
    assert off["macro_reads"] == 0
    assert off["bursts"] == 0
    assert off["events"] / on["events"] >= 2.5


def test_macro_off_is_the_default_validated_schedule(monkeypatch):
    monkeypatch.delenv(ENGINE_MACRO_ENV_VAR, raising=False)
    baseline = fig4_point_trace_hash(seed=4242)
    explicit_off = fig4_point_trace_hash(seed=4242)
    assert baseline == explicit_off
    # The macro schedule is itself reproducible run to run.
    monkeypatch.setenv(ENGINE_MACRO_ENV_VAR, "1")
    first = fig4_point_trace_hash(seed=4242)
    again = fig4_point_trace_hash(seed=4242)
    assert first == again


def test_resolved_engine_macro_precedence(monkeypatch):
    monkeypatch.delenv(ENGINE_MACRO_ENV_VAR, raising=False)
    assert ClusterConfig().resolved_engine_macro is False
    monkeypatch.setenv(ENGINE_MACRO_ENV_VAR, "1")
    assert ClusterConfig().resolved_engine_macro is True
    monkeypatch.setenv(ENGINE_MACRO_ENV_VAR, "0")
    assert ClusterConfig().resolved_engine_macro is False
    # An explicit config wins over the environment.
    monkeypatch.setenv(ENGINE_MACRO_ENV_VAR, "1")
    assert ClusterConfig(engine_macro=False).resolved_engine_macro is False
    monkeypatch.delenv(ENGINE_MACRO_ENV_VAR, raising=False)
    assert ClusterConfig(engine_macro=True).resolved_engine_macro is True


def test_cluster_plumbs_the_flag_to_cache_modules(monkeypatch):
    monkeypatch.delenv(ENGINE_MACRO_ENV_VAR, raising=False)
    on = Cluster(ClusterConfig(compute_nodes=2, iod_nodes=1, engine_macro=True))
    assert on.engine_macro is True
    assert all(m.engine_macro for m in on.cache_modules.values())
    off = Cluster(ClusterConfig(compute_nodes=2, iod_nodes=1))
    assert off.engine_macro is False
    assert not any(m.engine_macro for m in off.cache_modules.values())
