"""Unit tests for the disk substrate."""

import pytest

from repro.disk import DiskModel, LocalFileStore, PageCache
from repro.disk.filesystem import blocks_spanned, slice_for_block
from repro.sim import Environment


# -- DiskModel ------------------------------------------------------------


def test_disk_validation():
    env = Environment()
    with pytest.raises(ValueError):
        DiskModel(env, transfer_bytes_per_s=0)


def test_disk_first_access_seeks():
    env = Environment()
    disk = DiskModel(env, avg_seek_s=0.008, half_rotation_s=0.005,
                     transfer_bytes_per_s=20e6)
    done = []

    def proc(env):
        yield env.process(disk.io(1, 0, 4096, write=False))
        done.append(env.now)

    env.process(proc(env))
    env.run()
    expected = 0.008 + 0.005 + 4096 / 20e6
    assert done[0] == pytest.approx(expected)
    assert disk.seeks == 1


def test_disk_sequential_access_skips_seek():
    env = Environment()
    disk = DiskModel(env, avg_seek_s=0.008, half_rotation_s=0.005,
                     transfer_bytes_per_s=20e6)
    times = []

    def proc(env):
        yield env.process(disk.io(1, 0, 4096, write=False))
        t0 = env.now
        yield env.process(disk.io(1, 4096, 4096, write=False))
        times.append(env.now - t0)

    env.process(proc(env))
    env.run()
    assert times[0] == pytest.approx(4096 / 20e6)
    assert disk.seeks == 1


def test_disk_file_switch_forces_seek():
    env = Environment()
    disk = DiskModel(env)

    def proc(env):
        yield env.process(disk.io(1, 0, 4096, write=False))
        yield env.process(disk.io(2, 0, 4096, write=False))
        yield env.process(disk.io(1, 4096, 4096, write=False))

    env.process(proc(env))
    env.run()
    # all three seek: new file, other file, then back (head moved away)
    assert disk.seeks == 3


def test_disk_fifo_queueing():
    """Two concurrent requests serialise on the spindle."""
    env = Environment()
    disk = DiskModel(env, avg_seek_s=0.01, half_rotation_s=0,
                     transfer_bytes_per_s=1e9)
    finish = {}

    def proc(env, tag, file_id):
        yield env.process(disk.io(file_id, 0, 4096, write=False))
        finish[tag] = env.now

    env.process(proc(env, "a", 1))
    env.process(proc(env, "b", 2))
    env.run()
    assert finish["b"] > finish["a"]
    assert finish["b"] == pytest.approx(2 * finish["a"], rel=0.01)


def test_disk_counters():
    env = Environment()
    disk = DiskModel(env)

    def proc(env):
        yield env.process(disk.io(1, 0, 4096, write=False))
        yield env.process(disk.io(1, 4096, 8192, write=True))

    env.process(proc(env))
    env.run()
    assert disk.reads == 1 and disk.bytes_read == 4096
    assert disk.writes == 1 and disk.bytes_written == 8192


def test_disk_negative_size_rejected():
    env = Environment()
    disk = DiskModel(env)

    def proc(env):
        yield env.process(disk.io(1, 0, -1, write=False))

    p = env.process(proc(env))
    env.run()
    assert not p.ok


# -- LocalFileStore ----------------------------------------------------------


def test_store_roundtrip():
    store = LocalFileStore()
    store.write_block(1, 0, b"hello")
    data = store.read_block(1, 0)
    assert data.startswith(b"hello")
    assert len(data) == store.block_size


def test_store_unwritten_reads_zeros():
    store = LocalFileStore()
    assert store.read_block(9, 5) == b"\x00" * store.block_size
    assert not store.has_block(9, 5)


def test_store_sizeless_write_allocates():
    store = LocalFileStore()
    store.write_block(1, 3, None)
    assert store.has_block(1, 3)
    assert store.read_block(1, 3) == b"\x00" * store.block_size


def test_store_oversized_block_rejected():
    store = LocalFileStore(block_size=16)
    with pytest.raises(ValueError):
        store.write_block(1, 0, b"x" * 17)


def test_store_invalid_block_size():
    with pytest.raises(ValueError):
        LocalFileStore(block_size=0)


def test_store_blocks_of_and_delete():
    store = LocalFileStore()
    for b in (3, 1, 2):
        store.write_block(7, b, b"x")
    store.write_block(8, 0, b"y")
    assert store.blocks_of(7) == [1, 2, 3]
    assert store.delete_file(7) == 3
    assert store.blocks_of(7) == []
    assert store.has_block(8, 0)


def test_store_overwrite_replaces():
    store = LocalFileStore()
    store.write_block(1, 0, b"old")
    store.write_block(1, 0, b"new")
    assert store.read_block(1, 0).startswith(b"new")
    assert len(store) == 1


# -- block geometry helpers -----------------------------------------------


def test_blocks_spanned_basic():
    assert list(blocks_spanned(0, 4096, 4096)) == [0]
    assert list(blocks_spanned(0, 4097, 4096)) == [0, 1]
    assert list(blocks_spanned(4095, 2, 4096)) == [0, 1]
    assert list(blocks_spanned(8192, 4096, 4096)) == [2]


def test_blocks_spanned_empty_and_invalid():
    assert list(blocks_spanned(100, 0)) == []
    with pytest.raises(ValueError):
        blocks_spanned(-1, 10)
    with pytest.raises(ValueError):
        blocks_spanned(0, -10)


def test_slice_for_block():
    # request [1000, 9000) with 4 KB blocks
    assert slice_for_block(1000, 8000, 0, 4096) == (1000, 3096)
    assert slice_for_block(1000, 8000, 1, 4096) == (0, 4096)
    assert slice_for_block(1000, 8000, 2, 4096) == (0, 808)
    assert slice_for_block(1000, 8000, 3, 4096) == (0, 0)


# -- PageCache --------------------------------------------------------------


def test_pagecache_miss_then_hit():
    pc = PageCache(capacity_blocks=4)
    assert pc.lookup(1, 0) is False
    pc.insert(1, 0)
    assert pc.lookup(1, 0) is True
    assert pc.hits == 1 and pc.misses == 1
    assert pc.hit_ratio == 0.5


def test_pagecache_lru_eviction():
    pc = PageCache(capacity_blocks=2)
    pc.insert(1, 0)
    pc.insert(1, 1)
    pc.lookup(1, 0)  # 0 becomes MRU
    pc.insert(1, 2)  # evicts 1
    assert pc.contains(1, 0)
    assert not pc.contains(1, 1)
    assert pc.contains(1, 2)


def test_pagecache_zero_capacity_never_stores():
    pc = PageCache(capacity_blocks=0)
    pc.insert(1, 0)
    assert not pc.contains(1, 0)
    assert len(pc) == 0


def test_pagecache_negative_capacity_rejected():
    with pytest.raises(ValueError):
        PageCache(capacity_blocks=-1)


def test_pagecache_invalidate():
    pc = PageCache(capacity_blocks=4)
    pc.insert(1, 0)
    assert pc.invalidate(1, 0) is True
    assert pc.invalidate(1, 0) is False
    assert not pc.contains(1, 0)


def test_pagecache_reinsert_updates_recency():
    pc = PageCache(capacity_blocks=2)
    pc.insert(1, 0)
    pc.insert(1, 1)
    pc.insert(1, 0)  # refresh, no growth
    pc.insert(1, 2)  # evicts 1 (LRU), not 0
    assert pc.contains(1, 0) and pc.contains(1, 2)
    assert not pc.contains(1, 1)


def test_pagecache_hit_ratio_empty():
    pc = PageCache()
    assert pc.hit_ratio == 0.0
