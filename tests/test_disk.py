"""Unit tests for the disk substrate."""

import pytest

from repro.disk import DiskModel, LocalFileStore, PageCache
from repro.disk.filesystem import blocks_spanned, slice_for_block
from repro.sim import Environment


# -- DiskModel ------------------------------------------------------------


def test_disk_validation():
    env = Environment()
    with pytest.raises(ValueError):
        DiskModel(env, transfer_bytes_per_s=0)


def test_disk_first_access_seeks():
    env = Environment()
    disk = DiskModel(env, avg_seek_s=0.008, half_rotation_s=0.005,
                     transfer_bytes_per_s=20e6)
    done = []

    def proc(env):
        yield env.process(disk.io(1, 0, 4096, write=False))
        done.append(env.now)

    env.process(proc(env))
    env.run()
    expected = 0.008 + 0.005 + 4096 / 20e6
    assert done[0] == pytest.approx(expected)
    assert disk.seeks == 1


def test_disk_sequential_access_skips_seek():
    env = Environment()
    disk = DiskModel(env, avg_seek_s=0.008, half_rotation_s=0.005,
                     transfer_bytes_per_s=20e6)
    times = []

    def proc(env):
        yield env.process(disk.io(1, 0, 4096, write=False))
        t0 = env.now
        yield env.process(disk.io(1, 4096, 4096, write=False))
        times.append(env.now - t0)

    env.process(proc(env))
    env.run()
    assert times[0] == pytest.approx(4096 / 20e6)
    assert disk.seeks == 1


def test_disk_file_switch_forces_seek():
    env = Environment()
    disk = DiskModel(env)

    def proc(env):
        yield env.process(disk.io(1, 0, 4096, write=False))
        yield env.process(disk.io(2, 0, 4096, write=False))
        yield env.process(disk.io(1, 4096, 4096, write=False))

    env.process(proc(env))
    env.run()
    # all three seek: new file, other file, then back (head moved away)
    assert disk.seeks == 3


def test_disk_fifo_queueing():
    """Two concurrent requests serialise on the spindle."""
    env = Environment()
    disk = DiskModel(env, avg_seek_s=0.01, half_rotation_s=0,
                     transfer_bytes_per_s=1e9)
    finish = {}

    def proc(env, tag, file_id):
        yield env.process(disk.io(file_id, 0, 4096, write=False))
        finish[tag] = env.now

    env.process(proc(env, "a", 1))
    env.process(proc(env, "b", 2))
    env.run()
    assert finish["b"] > finish["a"]
    assert finish["b"] == pytest.approx(2 * finish["a"], rel=0.01)


def test_disk_counters():
    env = Environment()
    disk = DiskModel(env)

    def proc(env):
        yield env.process(disk.io(1, 0, 4096, write=False))
        yield env.process(disk.io(1, 4096, 8192, write=True))

    env.process(proc(env))
    env.run()
    assert disk.reads == 1 and disk.bytes_read == 4096
    assert disk.writes == 1 and disk.bytes_written == 8192


def test_disk_negative_size_rejected():
    env = Environment()
    disk = DiskModel(env)

    def proc(env):
        yield env.process(disk.io(1, 0, -1, write=False))

    p = env.process(proc(env))
    env.run()
    assert not p.ok


def test_disk_head_state_stays_bounded():
    """Regression: head state must not grow with the number of files.

    The model once kept a per-file head-position dict that was never
    pruned (only the latest entry was ever consulted), leaking an
    entry per file on long multi-file sweeps.  The state is now two
    scalars.
    """
    env = Environment()
    disk = DiskModel(env)

    def proc(env):
        for file_id in range(500):
            yield env.process(disk.io(file_id, 0, 4096, write=False))

    env.process(proc(env))
    env.run()
    assert not hasattr(disk, "_head_pos")
    assert disk._last_file == 499
    assert disk._last_end == 4096
    # Folding kept the semantics: only a continuation of the *last*
    # access is sequential.
    assert disk.is_sequential(499, 4096)
    assert not disk.is_sequential(0, 4096)


def test_disk_io_batch_times_like_per_run_ios():
    """The mechanical io_batch replays the per-request schedule."""

    runs = [(0, 4096), (16384, 8192), (24576, 4096)]  # run 3 continues run 2

    def one_env(use_batch):
        env = Environment()
        disk = DiskModel(env)

        def proc(env):
            if use_batch:
                yield from disk.io_batch(1, runs)
            else:
                for off, n in runs:
                    yield env.process(disk.io(1, off, n, write=False))

        env.process(proc(env))
        env.run()
        return env.now, disk.seeks, disk.reads, disk.bytes_read

    assert one_env(True) == one_env(False)


def test_disk_io_batch_on_run_complete_interleaves():
    """Mechanical batches report each run as it lands, not at the end."""
    env = Environment()
    disk = DiskModel(env)
    landings = []

    def proc(env):
        yield from disk.io_batch(
            1,
            [(0, 4096), (16384, 4096)],
            on_run_complete=lambda i: landings.append((i, env.now)),
        )

    env.process(proc(env))
    env.run()
    assert [i for i, _ in landings] == [0, 1]
    assert landings[0][1] < landings[1][1]


def test_disk_io_batch_write_counters():
    env = Environment()
    disk = DiskModel(env)

    def proc(env):
        yield from disk.io_batch(1, [(0, 4096), (16384, 8192)], write=True)

    env.process(proc(env))
    env.run()
    assert disk.writes == 2 and disk.bytes_written == 12288
    assert disk.reads == 0


# -- LocalFileStore ----------------------------------------------------------


def test_store_roundtrip():
    store = LocalFileStore()
    store.write_block(1, 0, b"hello")
    data = store.read_block(1, 0)
    assert data.startswith(b"hello")
    assert len(data) == store.block_size


def test_store_unwritten_reads_zeros():
    store = LocalFileStore()
    assert store.read_block(9, 5) == b"\x00" * store.block_size
    assert not store.has_block(9, 5)


def test_store_sizeless_write_allocates():
    store = LocalFileStore()
    store.write_block(1, 3, None)
    assert store.has_block(1, 3)
    assert store.read_block(1, 3) == b"\x00" * store.block_size


def test_store_oversized_block_rejected():
    store = LocalFileStore(block_size=16)
    with pytest.raises(ValueError):
        store.write_block(1, 0, b"x" * 17)


def test_store_invalid_block_size():
    with pytest.raises(ValueError):
        LocalFileStore(block_size=0)


def test_store_blocks_of_and_delete():
    store = LocalFileStore()
    for b in (3, 1, 2):
        store.write_block(7, b, b"x")
    store.write_block(8, 0, b"y")
    assert store.blocks_of(7) == [1, 2, 3]
    assert store.delete_file(7) == 3
    assert store.blocks_of(7) == []
    assert store.has_block(8, 0)


def test_store_overwrite_replaces():
    store = LocalFileStore()
    store.write_block(1, 0, b"old")
    store.write_block(1, 0, b"new")
    assert store.read_block(1, 0).startswith(b"new")
    assert len(store) == 1


# -- LocalFileStore range APIs (the zero-copy data path) --------------------


def test_store_range_roundtrip_unaligned():
    store = LocalFileStore(block_size=16)
    payload = bytes(range(100, 140))  # 40 bytes: straddles 4 blocks
    store.write_range(1, 7, 40, payload)
    assert store.read_range(1, 7, 40) == payload
    # Bytes around the written window read as zeros.
    assert store.read_range(1, 0, 7) == b"\x00" * 7
    assert store.read_range(1, 47, 10) == b"\x00" * 10


def test_store_read_range_matches_block_assembly():
    store = LocalFileStore(block_size=16)
    for block in (0, 1, 3):  # leave a hole at block 2
        store.write_block(5, block, bytes([block + 1] * 16))
    offset, nbytes = 5, 55
    expected = b"".join(
        store.read_block(5, b)[s : s + ln]
        for b in blocks_spanned(offset, nbytes, 16)
        for s, ln in [slice_for_block(offset, nbytes, b, 16)]
    )
    assert store.read_range(5, offset, nbytes) == expected


def test_store_write_range_partial_patch_preserves_rest():
    store = LocalFileStore(block_size=16)
    store.write_range(1, 0, 32, b"A" * 32)
    store.write_range(1, 10, 12, b"B" * 12)  # patch across the boundary
    data = store.read_range(1, 0, 32)
    assert data == b"A" * 10 + b"B" * 12 + b"A" * 10


def test_store_write_range_none_allocates_without_clobber():
    store = LocalFileStore(block_size=16)
    store.write_range(1, 0, 16, b"C" * 16)
    store.write_range(1, 0, 48, None)  # size-only write over it
    assert store.has_block(1, 0) and store.has_block(1, 2)
    assert store.read_range(1, 0, 16) == b"C" * 16  # payload kept
    assert store.read_range(1, 16, 32) == b"\x00" * 32


def test_store_range_zero_bytes_is_noop():
    store = LocalFileStore()
    assert store.read_range(1, 100, 0) == b""
    store.write_range(1, 100, 0, b"")
    assert len(store) == 0


def test_store_read_block_copies_mutable_blocks():
    """A partially patched block must not leak the internal buffer."""
    store = LocalFileStore(block_size=16)
    store.write_range(1, 4, 4, b"XXXX")  # partial -> bytearray inside
    snapshot = store.read_block(1, 0)
    assert isinstance(snapshot, bytes)
    store.write_range(1, 4, 4, b"YYYY")
    assert snapshot[4:8] == b"XXXX"  # earlier read unaffected
    assert store.read_block(1, 0)[4:8] == b"YYYY"


def test_store_write_range_full_block_replaces_patched():
    store = LocalFileStore(block_size=16)
    store.write_range(1, 4, 4, b"XXXX")  # promoted to bytearray
    store.write_range(1, 0, 16, b"Z" * 16)  # full overwrite
    assert store.read_block(1, 0) == b"Z" * 16


# -- block geometry helpers -----------------------------------------------


def test_blocks_spanned_basic():
    assert list(blocks_spanned(0, 4096, 4096)) == [0]
    assert list(blocks_spanned(0, 4097, 4096)) == [0, 1]
    assert list(blocks_spanned(4095, 2, 4096)) == [0, 1]
    assert list(blocks_spanned(8192, 4096, 4096)) == [2]


def test_blocks_spanned_empty_and_invalid():
    assert list(blocks_spanned(100, 0)) == []
    with pytest.raises(ValueError):
        blocks_spanned(-1, 10)
    with pytest.raises(ValueError):
        blocks_spanned(0, -10)


def test_slice_for_block():
    # request [1000, 9000) with 4 KB blocks
    assert slice_for_block(1000, 8000, 0, 4096) == (1000, 3096)
    assert slice_for_block(1000, 8000, 1, 4096) == (0, 4096)
    assert slice_for_block(1000, 8000, 2, 4096) == (0, 808)
    assert slice_for_block(1000, 8000, 3, 4096) == (0, 0)


# -- PageCache --------------------------------------------------------------


def test_pagecache_miss_then_hit():
    pc = PageCache(capacity_blocks=4)
    assert pc.lookup(1, 0) is False
    pc.insert(1, 0)
    assert pc.lookup(1, 0) is True
    assert pc.hits == 1 and pc.misses == 1
    assert pc.hit_ratio == 0.5


def test_pagecache_lru_eviction():
    pc = PageCache(capacity_blocks=2)
    pc.insert(1, 0)
    pc.insert(1, 1)
    pc.lookup(1, 0)  # 0 becomes MRU
    pc.insert(1, 2)  # evicts 1
    assert pc.contains(1, 0)
    assert not pc.contains(1, 1)
    assert pc.contains(1, 2)


def test_pagecache_zero_capacity_never_stores():
    pc = PageCache(capacity_blocks=0)
    pc.insert(1, 0)
    assert not pc.contains(1, 0)
    assert len(pc) == 0


def test_pagecache_negative_capacity_rejected():
    with pytest.raises(ValueError):
        PageCache(capacity_blocks=-1)


def test_pagecache_invalidate():
    pc = PageCache(capacity_blocks=4)
    pc.insert(1, 0)
    assert pc.invalidate(1, 0) is True
    assert pc.invalidate(1, 0) is False
    assert not pc.contains(1, 0)


def test_pagecache_reinsert_updates_recency():
    pc = PageCache(capacity_blocks=2)
    pc.insert(1, 0)
    pc.insert(1, 1)
    pc.insert(1, 0)  # refresh, no growth
    pc.insert(1, 2)  # evicts 1 (LRU), not 0
    assert pc.contains(1, 0) and pc.contains(1, 2)
    assert not pc.contains(1, 1)


def test_pagecache_hit_ratio_empty():
    pc = PageCache()
    assert pc.hit_ratio == 0.0


# -- PageCache bulk APIs (the batched miss path) ----------------------------


def test_pagecache_lookup_many_coalesces_missing_runs():
    pc = PageCache(capacity_blocks=8)
    pc.insert(1, 2)
    hits, runs = pc.lookup_many(1, [0, 1, 2, 3, 5, 6])
    assert hits == 1
    assert runs == [(0, 2), (3, 1), (5, 2)]
    assert pc.hits == 1 and pc.misses == 5


def test_pagecache_lookup_many_matches_per_block_lookups():
    blocks = [0, 1, 4, 5, 6, 9]
    resident = [1, 5]
    bulk = PageCache(capacity_blocks=8)
    loop = PageCache(capacity_blocks=8)
    for cache in (bulk, loop):
        for b in resident:
            cache.insert(1, b)
    hits, runs = bulk.lookup_many(1, blocks)
    # Reference: the old per-block loop with caller-side coalescing.
    missing = [b for b in blocks if not loop.lookup(1, b)]
    ref_runs, start, prev = [], None, None
    for b in missing:
        if start is None:
            start = prev = b
        elif b == prev + 1:
            prev = b
        else:
            ref_runs.append((start, prev - start + 1))
            start = prev = b
    if start is not None:
        ref_runs.append((start, prev - start + 1))
    assert runs == ref_runs
    assert hits == loop.hits
    assert (bulk.hits, bulk.misses) == (loop.hits, loop.misses)
    assert list(bulk._lru) == list(loop._lru)  # identical recency order


def test_pagecache_lookup_many_repeated_block_closes_run():
    """A duplicate missing block starts a new run (not a longer one),
    matching the old coalescing loop byte for byte."""
    pc = PageCache(capacity_blocks=8)
    hits, runs = pc.lookup_many(1, [0, 0, 1])
    assert hits == 0
    assert runs == [(0, 1), (0, 2)]


def test_pagecache_lookup_many_all_hits_and_empty():
    pc = PageCache(capacity_blocks=8)
    pc.insert_many(1, 0, 3)
    assert pc.lookup_many(1, [0, 1, 2]) == (3, [])
    assert pc.lookup_many(1, []) == (0, [])


def test_pagecache_lookup_many_updates_recency():
    pc = PageCache(capacity_blocks=2)
    pc.insert(1, 0)
    pc.insert(1, 1)
    pc.lookup_many(1, [0])  # 0 becomes MRU
    pc.insert(1, 2)  # evicts 1
    assert pc.contains(1, 0) and pc.contains(1, 2)
    assert not pc.contains(1, 1)


def test_pagecache_insert_many_evicts_like_per_block_inserts():
    pc = PageCache(capacity_blocks=2)
    pc.insert_many(1, 0, 5)  # run longer than the cache
    # Per-block insertion order leaves the run's tail resident.
    assert not pc.contains(1, 2)
    assert pc.contains(1, 3) and pc.contains(1, 4)
    assert len(pc) == 2


def test_pagecache_insert_many_refreshes_recency():
    pc = PageCache(capacity_blocks=3)
    pc.insert(1, 9)
    pc.insert_many(1, 0, 2)
    pc.insert_many(1, 9, 1)  # refresh, no growth
    pc.insert(1, 5)  # evicts block 0 (LRU), not 9
    assert pc.contains(1, 9) and not pc.contains(1, 0)


def test_pagecache_insert_many_zero_capacity_retains_nothing():
    pc = PageCache(capacity_blocks=0)
    pc.insert_many(1, 0, 64)
    assert len(pc) == 0
    assert not pc.contains(1, 0)
    # ...and the LRU stays usable for lookups afterwards.
    hits, runs = pc.lookup_many(1, [0, 1])
    assert hits == 0 and runs == [(0, 2)]


def test_pagecache_insert_many_nonpositive_count_is_noop():
    pc = PageCache(capacity_blocks=4)
    pc.insert_many(1, 0, 0)
    pc.insert_many(1, 0, -3)
    assert len(pc) == 0
