"""Tests for the metadata RPCs (stat/unlink/list) over the wire."""

import pytest

from tests.conftest import make_cluster, run_app


def test_stat_existing_and_missing():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/meta/file")
        found = yield from client.stat("/meta/file")
        assert found is not None
        assert found.file_id == f.file_id
        missing = yield from client.stat("/meta/ghost")
        assert missing is None

    run_app(cluster, app(cluster.env))
    assert cluster.metrics.count("mgr.stats") == 2


def test_unlink_removes_from_namespace():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")

    def app(env):
        yield from client.open("/meta/victim")
        existed = yield from client.unlink("/meta/victim")
        assert existed is True
        gone = yield from client.stat("/meta/victim")
        assert gone is None
        again = yield from client.unlink("/meta/victim")
        assert again is False

    run_app(cluster, app(cluster.env))
    assert cluster.metrics.count("mgr.unlinks") == 2


def test_listdir_reflects_namespace():
    cluster = make_cluster(caching=False)
    a = cluster.client("node0")
    b = cluster.client("node1")

    def app(env):
        yield from a.open("/z")
        yield from b.open("/a")
        paths = yield from a.listdir()
        assert paths == ["/a", "/z"]

    run_app(cluster, app(cluster.env))
    assert cluster.metrics.count("mgr.lists") == 1


def test_reopen_after_unlink_creates_fresh_file():
    cluster = make_cluster(caching=False)
    client = cluster.client("node0")

    def app(env):
        f1 = yield from client.open("/reborn")
        yield from client.unlink("/reborn")
        f2 = yield from client.open("/reborn")
        assert f2.file_id != f1.file_id

    run_app(cluster, app(cluster.env))


def test_metadata_ops_cost_simulated_time():
    """Metadata is never cached: each op pays a mgr round trip."""
    cluster = make_cluster(caching=True)
    client = cluster.client("node0")

    def app(env):
        yield from client.open("/timed")
        t0 = env.now
        yield from client.stat("/timed")
        first = env.now - t0
        t0 = env.now
        yield from client.stat("/timed")
        second = env.now - t0
        # the second stat is just as expensive: no metadata caching
        assert second == pytest.approx(first, rel=0.5)
        assert second > 0

    run_app(cluster, app(cluster.env))
