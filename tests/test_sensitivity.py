"""Tests for the sensitivity-sweep experiments."""

import pytest

from repro.experiments.sensitivity import (
    run_block_size_sweep,
    run_cache_size_sweep,
    run_multiprogramming_sweep,
)


def test_cache_size_sweep_monotone_benefit():
    """More cache never hurts, and the sweep reports real speedups."""
    result = run_cache_size_sweep(sizes_kb=(300, 1200, 4800))
    series = result.get("speedup")
    assert series.xs == [300, 1200, 4800]
    assert all(s > 0 for s in series.ys)
    # growing the cache 16x should not reduce the benefit noticeably
    assert series.y_at(4800) >= series.y_at(300) * 0.9
    assert "baseline" in result.notes


def test_cache_size_sweep_bigger_cache_helps_locality():
    result = run_cache_size_sweep(sizes_kb=(300, 4800))
    small, large = result.get("speedup").ys
    assert large >= small * 0.95


def test_multiprogramming_sweep_shapes():
    result = run_multiprogramming_sweep(degrees=(1, 2))
    series = result.get("speedup")
    assert series.xs == [1, 2]
    # the shared cache helps multiprogrammed nodes at least as much as
    # a single instance (inter-application hits only exist at >= 2)
    assert all(s > 1.0 for s in series.ys)


def test_block_size_sweep_runs_all_sizes():
    result = run_block_size_sweep(block_sizes=(4096, 16384))
    series = result.get("caching")
    assert series.xs == [4096, 16384]
    assert all(t > 0 for t in series.ys)
