"""Property-style fuzz: random mixed workloads under the sanitizer.

Two clients on different nodes hammer one shared file with a random
interleaving of ``read``/``write``/``sync_write`` (the coherent path
triggers cross-node invalidations) while ``REPRO_SANITIZE=1`` validates
the block-accounting invariant at a tight cadence.  Any drift between
the hash table, free list, dirty list, replacement policy and pin
counts fails the run with a diagnostic instead of silently corrupting
the simulation.
"""

import numpy as np
import pytest

from tests.conftest import make_cluster

#: 2 nodes x 3 seeds x OPS_PER_CLIENT = 5400 operations >= the 5k floor.
OPS_PER_CLIENT = 900

SEEDS = [7, 1234, 20020902]


def _fuzz_app(client, handle_path, rng, n_ops):
    f = yield from client.open(handle_path)
    for _ in range(n_ops):
        dice = rng.random()
        # offsets deliberately overlap across clients and straddle
        # block boundaries (non-4096-aligned starts, 1-2 block spans)
        offset = int(rng.integers(0, 48)) * 1024
        nbytes = int(rng.integers(1, 9)) * 512
        if dice < 0.50:
            yield from client.read(f, offset, nbytes)
        elif dice < 0.85:
            yield from client.write(f, offset, nbytes)
        else:
            yield from client.sync_write(f, offset, nbytes)


@pytest.mark.parametrize("seed", SEEDS)
def test_random_workload_holds_invariants(monkeypatch, seed):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "8")
    # tiny cache: constant eviction pressure exercises the harvester
    # and the free-list paths, not just steady-state hits
    cluster = make_cluster(compute_nodes=2, iod_nodes=2, cache_blocks=12)
    env = cluster.env
    procs = []
    for i, node in enumerate(("node0", "node1")):
        client = cluster.client(node)
        rng = np.random.default_rng(seed + 101 * i)
        procs.append(
            env.process(
                _fuzz_app(client, "/fuzz-shared", rng, OPS_PER_CLIENT),
                name=f"fuzzer-{node}",
            )
        )
    env.run(until=env.all_of(procs))
    for node in ("node0", "node1"):
        sanitizer = cluster.cache_modules[node].manager.sanitizer
        assert sanitizer is not None
        assert sanitizer.checks_run > 1000
        sanitizer.check()  # one final full validation at quiescence
