"""Tests for configuration validation and cluster assembly."""

import pytest

from repro.cluster.config import CacheConfig, ClusterConfig, CostModel
from tests.conftest import make_cluster, run_app


# -- CostModel -----------------------------------------------------------


def test_cost_model_defaults_respect_paper_bound():
    costs = CostModel()
    assert costs.cache_block_service_s < 400e-6


def test_cost_model_validation():
    with pytest.raises(ValueError):
        CostModel(fabric="token-ring")
    with pytest.raises(ValueError):
        CostModel(bandwidth_bps=0)
    with pytest.raises(ValueError):
        CostModel(disk_bytes_per_s=-1)


# -- CacheConfig ---------------------------------------------------------


def test_cache_config_paper_defaults():
    cache = CacheConfig()
    assert cache.size_bytes == 1_200 * 1024  # 1.2 MB
    assert cache.block_size == 4096
    assert cache.n_blocks == 300


def test_cache_config_watermarks():
    cache = CacheConfig(low_watermark=0.1, high_watermark=0.25)
    assert cache.low_blocks == 30
    assert cache.high_blocks == 75
    with pytest.raises(ValueError):
        CacheConfig(low_watermark=0.5, high_watermark=0.25)
    with pytest.raises(ValueError):
        CacheConfig(low_watermark=-0.1)


def test_cache_config_validation():
    with pytest.raises(ValueError):
        CacheConfig(block_size=0)
    with pytest.raises(ValueError):
        CacheConfig(size_bytes=100, block_size=4096)
    with pytest.raises(ValueError):
        CacheConfig(replacement="fifo")


def test_cache_config_segments():
    cache = CacheConfig()
    assert cache.effective_segment_blocks == 300 // 8
    assert CacheConfig(segment_blocks=10).effective_segment_blocks == 10
    with pytest.raises(ValueError):
        _ = CacheConfig(segment_blocks=0).effective_segment_blocks
    # tiny caches still get a sane floor
    tiny = CacheConfig(size_bytes=16 * 4096)
    assert tiny.effective_segment_blocks == 8


# -- ClusterConfig -------------------------------------------------------


def test_cluster_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(compute_nodes=0)
    with pytest.raises(ValueError):
        ClusterConfig(iod_nodes=0)
    with pytest.raises(ValueError):
        ClusterConfig(stripe_size=0)
    with pytest.raises(ValueError):
        ClusterConfig(stripe_size=5000)  # not multiple of block size


def test_node_naming_colocated():
    config = ClusterConfig(compute_nodes=4, iod_nodes=4)
    assert config.compute_node_names() == ["node0", "node1", "node2", "node3"]
    assert config.iod_node_names() == ["node0", "node1", "node2", "node3"]


def test_node_naming_separate():
    config = ClusterConfig(compute_nodes=2, iod_nodes=3, separate_iod_nodes=True)
    assert config.compute_node_names() == ["node0", "node1"]
    assert config.iod_node_names() == ["node2", "node3", "node4"]


# -- Cluster assembly ----------------------------------------------------


def test_cluster_builds_colocated_nodes_once():
    cluster = make_cluster(compute_nodes=2, iod_nodes=2)
    assert set(cluster.nodes) == {"node0", "node1"}
    assert all(n.disk is not None for n in cluster.nodes.values())
    assert len(cluster.iods) == 2
    assert len(cluster.cache_modules) == 2


def test_cluster_separate_iod_nodes():
    cluster = make_cluster(
        compute_nodes=2, iod_nodes=2, separate_iod_nodes=True
    )
    assert set(cluster.nodes) == {"node0", "node1", "node2", "node3"}
    assert cluster.nodes["node0"].disk is None
    assert cluster.nodes["node2"].disk is not None
    assert "node0" in cluster.cache_modules
    assert "node2" not in cluster.cache_modules


def test_cluster_no_caching_has_no_modules():
    cluster = make_cluster(caching=False)
    assert cluster.cache_modules == {}
    assert cluster.nodes["node0"].cache_module is None


def test_cluster_hub_fabric_option():
    from repro.net import SharedHubFabric

    # Pin the contention model: this test is about topology selection,
    # and must hold even when REPRO_NET_MODEL=fluid (the fluid CI
    # shard) would otherwise swap the fabric class.
    config = ClusterConfig(
        costs=CostModel(fabric="hub"), net_model="frames"
    )
    from repro.cluster.cluster import Cluster

    cluster = Cluster(config)
    assert isinstance(cluster.network.fabric, SharedHubFabric)


def test_cluster_node_repr_and_accessors():
    cluster = make_cluster()
    node = cluster.node("node0")
    assert "node0" in repr(node)
    assert cluster.compute_nodes == ["node0", "node1"]
    assert cluster.iod_nodes == ["node0", "node1"]


def test_node_compute_validation():
    cluster = make_cluster()
    node = cluster.node("node0")

    def bad(env):
        yield from node.compute(-1)

    proc = cluster.env.process(bad(cluster.env))
    # bounded run: cluster daemons (flusher) reschedule forever
    cluster.env.run(until=0.001)
    assert proc.triggered and not proc.ok


def test_node_compute_zero_is_free():
    cluster = make_cluster()
    node = cluster.node("node0")

    def app(env):
        yield from node.compute(0)
        return env.now

    assert run_app(cluster, app(cluster.env)) == 0.0


def test_drain_caches_helper():
    cluster = make_cluster()
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/f")
        yield from client.write(f, 0, 8192, None)
        yield from cluster.drain_caches()
        assert all(
            m.manager.n_dirty == 0 for m in cluster.cache_modules.values()
        )

    run_app(cluster, app(cluster.env))
