"""Tests for the resource monitor and the reproduction validator."""

import math

import pytest

from repro.metrics.monitor import ResourceMonitor
from repro.sim import Environment
from tests.conftest import make_cluster


def test_monitor_validation():
    env = Environment()
    with pytest.raises(ValueError):
        ResourceMonitor(env, interval_s=0)


def test_monitor_samples_at_interval():
    env = Environment()
    monitor = ResourceMonitor(env, interval_s=1.0)
    counter = {"v": 0}
    monitor.track("v", lambda: counter["v"])
    monitor.start()

    def workload(env):
        for _ in range(5):
            counter["v"] += 10
            yield env.timeout(1.0)

    env.process(workload(env))
    env.run(until=5.5)
    assert len(monitor.times) == 6  # t = 0..5
    assert monitor.series("v")[0] == 0
    assert monitor.peak("v") == 50
    assert monitor.mean("v") > 0
    assert monitor.time_above("v", 25) == 3.0  # samples at 30, 40, 50


def test_monitor_duplicate_probe_rejected():
    env = Environment()
    monitor = ResourceMonitor(env)
    monitor.track("a", lambda: 0)
    with pytest.raises(ValueError):
        monitor.track("a", lambda: 1)


def test_monitor_double_start_rejected():
    env = Environment()
    monitor = ResourceMonitor(env)
    monitor.start()
    with pytest.raises(RuntimeError):
        monitor.start()


def test_monitor_late_probe_backfills_nan():
    env = Environment()
    monitor = ResourceMonitor(env, interval_s=1.0)
    monitor.track("early", lambda: 1.0)
    monitor.start()

    def add_late(env):
        yield env.timeout(2.5)
        monitor.track("late", lambda: 2.0)

    env.process(add_late(env))
    env.run(until=5)
    assert len(monitor.series("late")) == len(monitor.series("early"))
    assert math.isnan(monitor.series("late")[0])
    assert monitor.peak("late") == 2.0


def test_monitor_stop():
    env = Environment()
    monitor = ResourceMonitor(env, interval_s=1.0)
    monitor.track("x", lambda: 1)
    monitor.start()

    def stopper(env):
        yield env.timeout(2.5)
        monitor.stop()

    env.process(stopper(env))
    env.run(until=10)
    assert len(monitor.times) == 3  # t = 0, 1, 2 (stopped before 3)


def test_monitor_table_and_sparkline():
    env = Environment()
    monitor = ResourceMonitor(env, interval_s=0.5)
    value = {"v": 0.0}
    monitor.track("load", lambda: value["v"])
    monitor.start()

    def workload(env):
        for i in range(6):
            value["v"] = float(i)
            yield env.timeout(0.5)

    env.process(workload(env))
    env.run(until=3)
    table = monitor.table()
    assert "load" in table and "t(s)" in table
    assert len(monitor.sparkline("load")) == len(monitor.times)


def test_monitor_empty_table():
    env = Environment()
    assert ResourceMonitor(env).table() == "(no samples)"


def test_monitor_on_real_cluster_cache_occupancy():
    """Watch the cache fill during a workload."""
    cluster = make_cluster(compute_nodes=1, iod_nodes=1, cache_blocks=32)
    module = cluster.cache_modules["node0"]
    monitor = ResourceMonitor(cluster.env, interval_s=0.005)
    monitor.track("resident", lambda: module.manager.n_resident)
    monitor.track("dirty", lambda: module.manager.n_dirty)
    monitor.start()
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/fill")
        for i in range(16):
            yield from client.read(f, i * 16384, 16384)

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)
    assert monitor.peak("resident") > 0
    assert monitor.peak("resident") <= 32


# -- barrier/lookahead scheduler counters ------------------------------------


def test_sched_stats_exposes_barrier_counters():
    env = Environment()
    stats = env.sched_stats()
    assert stats["barriers_crossed"] == 0
    assert stats["cross_shard_msgs"] == 0
    assert stats["max_shard_skew_us"] == 0


def test_note_barrier_and_cross_shard_counters():
    env = Environment()
    env.note_barrier(skew_s=150e-6)
    env.note_barrier(skew_s=50e-6)  # lower skew: high-water unchanged
    env.note_cross_shard_msg()
    env.note_cross_shard_msg(3)
    stats = env.sched_stats()
    assert stats["barriers_crossed"] == 2
    assert stats["cross_shard_msgs"] == 4
    assert stats["max_shard_skew_us"] == 150


def test_barrier_counters_fold_into_sim_metrics():
    cluster = make_cluster()
    cluster.env.note_barrier(skew_s=1e-3)
    cluster.env.note_cross_shard_msg(2)
    cluster.record_scheduler_metrics()
    assert cluster.metrics.counters["sim.barriers_crossed"] == 1
    assert cluster.metrics.counters["sim.cross_shard_msgs"] == 2
    assert cluster.metrics.counters["sim.max_shard_skew_us"] == 1000


def test_daemon_summary_scheduler_line_has_barrier_counters():
    import io

    from repro.experiments.report import daemon_summary

    stream = io.StringIO()
    daemon_summary(stream=stream)
    out = stream.getvalue()
    assert "barriers" in out
    assert "cross-shard msgs" in out
    assert "shard skew" in out


# -- per-mgr-shard instrumentation -------------------------------------------


def _staggered_share(cluster):
    """node1 reads a file, then node0 sync_writes it (forces fan-out)."""
    client1 = cluster.client("node1")
    client0 = cluster.client("node0")

    def reader(env):
        handle = yield from client1.open("/data/shared")
        yield from client1.read(handle, 0, 256 * 1024)

    def writer(env):
        handle = yield from client0.open("/data/shared")
        yield from client0.sync_write(handle, 0, 64 * 1024)

    cluster.env.run(until=cluster.env.process(reader(cluster.env)))
    cluster.env.run(until=cluster.env.process(writer(cluster.env)))


def test_daemon_monitor_tracks_metadata_ops_per_shard():
    from repro.metrics import DaemonMonitor
    from repro.pvfs import protocol
    from repro.svc import get_bus

    cluster = make_cluster(mgr_shards=2)
    monitor = DaemonMonitor(get_bus(cluster.env))
    _staggered_share(cluster)
    owner = protocol.mgr_shard_of("/data/shared", 2)
    # Both opens hit the owning shard; the other shard saw nothing.
    assert monitor.metadata_ops == {owner: 2}
    monitor.close()


def test_daemon_monitor_attributes_invalidation_fanout_to_owner():
    from repro.metrics import DaemonMonitor
    from repro.pvfs import protocol
    from repro.svc import get_bus

    cluster = make_cluster(mgr_shards=2)
    monitor = DaemonMonitor(get_bus(cluster.env))
    _staggered_share(cluster)
    owner = protocol.mgr_shard_of("/data/shared", 2)
    # The sync_write invalidated node1's cached copy; the fan-out is
    # charged to the owning shard only — the cache module's
    # receive-side invalidation record must not leak into shard 0.
    assert monitor.invalidation_fanout == {owner: 1}
    monitor.close()


def test_mgr_shard_table_one_row_per_shard():
    from repro.metrics import DaemonMonitor
    from repro.svc import get_bus

    cluster = make_cluster(mgr_shards=4)
    monitor = DaemonMonitor(get_bus(cluster.env))
    _staggered_share(cluster)
    table = monitor.mgr_shard_table(duration_s=cluster.env.now)
    lines = table.splitlines()
    assert lines[0].split() == [
        "shard", "node", "meta-ops", "ops/s", "q-high", "inval-out"
    ]
    assert len(lines) == 5  # header + 4 shards
    assert [line.split()[0] for line in lines[1:]] == ["0", "1", "2", "3"]
    monitor.close()


def test_mgr_shard_table_single_shard_is_plain_mgr():
    from repro.metrics import DaemonMonitor
    from repro.svc import get_bus

    cluster = make_cluster()
    monitor = DaemonMonitor(get_bus(cluster.env))
    _staggered_share(cluster)
    table = monitor.mgr_shard_table(duration_s=cluster.env.now)
    lines = table.splitlines()
    assert len(lines) == 2
    row = lines[1].split()
    assert row[0] == "0"
    assert int(row[2]) == 2  # both opens
    assert float(row[3]) > 0  # ops/s computed from duration
    monitor.close()


def test_mgr_shard_table_no_cluster():
    from repro.metrics import DaemonMonitor
    from repro.svc import get_bus

    env = Environment()
    monitor = DaemonMonitor(get_bus(env))
    assert monitor.mgr_shard_table() == "(no mgr shards registered)"
    monitor.close()


def test_daemon_summary_prints_mgr_shard_rows():
    import io

    from repro.experiments.report import daemon_summary

    stream = io.StringIO()
    daemon_summary(stream=stream)
    out = stream.getvalue()
    assert "metadata shards:" in out
    assert "inval-out" in out


# -- validator ---------------------------------------------------------------


def test_validator_check_dataclass():
    from repro.experiments.validate import Check

    c = Check(claim="x", passed=True, detail="d")
    assert c.passed


def test_validator_main_smoke(capsys):
    """The full checklist runs and reports (slow-ish: ~1 min)."""
    from repro.experiments.validate import main

    rc = main()
    out = capsys.readouterr().out
    assert "claims reproduced" in out
    assert rc == 0
    assert "FAIL" not in out.replace("FAILED", "")
