"""The runtime sanitizer: installation gating, invariant checking,
and the atomic-section race detector."""

import pytest

from repro.analysis.sanitize import (
    InvariantViolation,
    RaceDiagnostic,
    atomic_section,
)
from tests.conftest import make_cluster, run_app


def _manager(cluster, node="node0"):
    return cluster.cache_modules[node].manager


def test_disabled_by_default(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    cluster = make_cluster(compute_nodes=1, iod_nodes=1)
    manager = _manager(cluster)
    assert manager.sanitizer is None
    # the null section is shared and inert
    section = atomic_section(manager.table, label="off")
    with section:
        pass


def test_installed_when_enabled(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    cluster = make_cluster(compute_nodes=1, iod_nodes=1)
    manager = _manager(cluster)
    assert manager.sanitizer is not None
    manager.sanitizer.check()  # a fresh cache satisfies the invariant


def test_clean_workload_passes_checks(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "1")
    cluster = make_cluster(compute_nodes=1, iod_nodes=1, cache_blocks=8)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/san")
        for i in range(32):
            yield from client.write(f, (i % 12) * 4096, 4096)
            yield from client.read(f, (i % 12) * 4096, 4096)

    run_app(cluster, app(cluster.env))
    sanitizer = _manager(cluster).sanitizer
    assert sanitizer.checks_run > 100
    sanitizer.check()


def test_invariant_catches_policy_drift(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    cluster = make_cluster(compute_nodes=1, iod_nodes=1)
    manager = _manager(cluster)
    # corrupt: the policy starts tracking a frame that is not resident
    manager.policy.admit(manager.blocks[0])
    with pytest.raises(InvariantViolation, match="policy out of sync"):
        manager.sanitizer.check()


def test_invariant_catches_dirty_list_drift(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    cluster = make_cluster(compute_nodes=1, iod_nodes=1, cache_blocks=8)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/drift")
        yield from client.write(f, 0, 4096)

    run_app(cluster, app(cluster.env))
    manager = _manager(cluster)
    dirty = manager.dirtylist.snapshot()
    assert dirty, "the write should have left a dirty block"
    # corrupt: a DIRTY block silently leaves the dirty list
    manager.dirtylist.discard(dirty[0])
    with pytest.raises(InvariantViolation, match="not on the dirty list"):
        manager.sanitizer.check()


def test_atomic_section_reports_both_processes(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    # keep the periodic checker quiet; this test is about the race
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "1000000")
    cluster = make_cluster(compute_nodes=1, iod_nodes=1)
    env = cluster.env
    manager = _manager(cluster)
    block = manager.blocks[0]

    def victim(env):
        with atomic_section(manager.policy, label="crit"):
            yield env.timeout(1.0)

    def attacker(env):
        yield env.timeout(0.5)
        # net no-op mutation: the structure ends consistent, but the
        # interleaving itself is the bug the section must report
        manager.policy.admit(block)
        manager.policy.forget(block)

    proc = env.process(victim(env), name="victim")
    env.process(attacker(env), name="attacker")
    with pytest.raises(RaceDiagnostic) as excinfo:
        env.run(until=proc)
    diag = excinfo.value
    assert diag.holder == "victim"
    assert diag.mutator == "attacker"
    assert diag.label == "crit"
    assert "victim" in str(diag) and "attacker" in str(diag)


def test_atomic_section_allows_own_mutations(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    monkeypatch.setenv("REPRO_SANITIZE_EVERY", "1000000")
    cluster = make_cluster(compute_nodes=1, iod_nodes=1)
    env = cluster.env
    manager = _manager(cluster)
    block = manager.blocks[0]

    def worker(env):
        with atomic_section(manager.policy, label="self-mutation"):
            manager.policy.admit(block)
            manager.policy.forget(block)
            yield env.timeout(1.0)

    proc = env.process(worker(env), name="worker")
    env.run(until=proc)  # must not raise
