"""Smoke tests: every example script must run to completion.

(The scheduler example sweeps a 6-node grid and is exercised with a
reduced grid here rather than its full main().)
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def _load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "warm read speedup" in out
    assert "hit-ratio" in out


def test_analysis_pipeline_runs(capsys):
    _load("analysis_pipeline").main()
    out = capsys.readouterr().out
    assert "speedup" in out
    # caching must actually have helped
    speedup = float(out.split("speedup: ")[1].split("x")[0])
    assert speedup > 1.0


def test_coherent_checkpointing_runs(capsys):
    _load("coherent_checkpointing").main()
    out = capsys.readouterr().out
    assert "stale checkpoint reads: 0" in out  # the coherent run
    assert "producer-consumer" in out


def test_trace_replay_runs(capsys):
    _load("trace_replay").main()
    out = capsys.readouterr().out
    assert "replaying" in out
    assert "no caching" in out


def test_collective_io_single_cell():
    """One measurement of the collective example (full main is slow)."""
    module = _load("collective_io")
    t_coll = module.measure(collective=True, caching=False)
    t_indep = module.measure(collective=False, caching=False)
    assert t_coll < t_indep


def test_cache_sizing_runs(capsys):
    _load("cache_sizing").main()
    out = capsys.readouterr().out
    assert "knee of the curve" in out
    assert "predicted hit ratio" in out


def test_scheduler_colocation_single_cell():
    """One cell of the scheduler example's grid (full main is slow)."""
    module = _load("scheduler_colocation")
    t_co = module.placement_time(1.0, 0.75, colocate=True)
    t_sp = module.placement_time(1.0, 0.75, colocate=False)
    assert t_co < t_sp  # l=1, high sharing: co-location wins


def test_openloop_scaling_single_cell():
    """One cell of the knee sweep (full main sweeps p=256 and is slow)."""
    module = _load("openloop_scaling")
    one = module.measure(16, 1, 16000.0, duration_s=0.1)
    four = module.measure(16, 4, 16000.0, duration_s=0.1)
    assert four["completed_ops_per_s"] > one["completed_ops_per_s"]
