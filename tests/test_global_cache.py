"""Tests for the cooperative global cache extension."""

import pytest

from repro.cache.global_cache import GlobalCacheDirectory
from repro.cluster.config import CacheConfig, ClusterConfig
from repro.cluster.cluster import Cluster


def make_gcache_cluster(compute_nodes=2, iod_nodes=2, **cache_kw):
    cache = CacheConfig(global_cache=True, **cache_kw)
    config = ClusterConfig(
        compute_nodes=compute_nodes,
        iod_nodes=iod_nodes,
        caching=True,
        cache=cache,
    )
    return Cluster(config)


# -- directory ----------------------------------------------------------------


def test_directory_requires_nodes():
    with pytest.raises(ValueError):
        GlobalCacheDirectory([])


def test_directory_deterministic_and_balanced():
    d = GlobalCacheDirectory(["a", "b", "c"])
    homes = [d.home_of((1, i)) for i in range(300)]
    assert homes == [d.home_of((1, i)) for i in range(300)]
    counts = {n: homes.count(n) for n in ("a", "b", "c")}
    assert all(count > 50 for count in counts.values())


def test_directory_order_independent():
    a = GlobalCacheDirectory(["x", "y", "z"])
    b = GlobalCacheDirectory(["z", "x", "y"])
    for i in range(50):
        assert a.home_of((2, i)) == b.home_of((2, i))


# -- end-to-end peer hits --------------------------------------------------------


def test_remote_hit_avoids_iod():
    cluster = make_gcache_cluster()
    a = cluster.client("node0")
    b = cluster.client("node1")
    m = cluster.metrics

    def app(env):
        f = yield from a.open("/g")
        # figure out a block homed on node0
        directory = cluster.cache_modules["node0"].gcache.directory
        block_no = next(
            i for i in range(64) if directory.home_of((f.file_id, i)) == "node0"
        )
        offset = block_no * 4096
        yield from a.read(f, offset, 4096)  # node0 now caches it
        iod_reads_before = m.count("iod.reads")
        yield from b.read(f, offset, 4096)  # node1 misses -> peer hit
        assert m.count("gcache.remote_hits") == 1
        assert m.count("iod.reads") == iod_reads_before  # no iod traffic

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_remote_miss_falls_through_to_iod():
    cluster = make_gcache_cluster()
    b = cluster.client("node1")
    m = cluster.metrics

    def app(env):
        f = yield from b.open("/g")
        directory = cluster.cache_modules["node1"].gcache.directory
        block_no = next(
            i for i in range(64) if directory.home_of((f.file_id, i)) == "node0"
        )
        # nothing cached anywhere: peer lookup misses, iod serves
        yield from b.read(f, block_no * 4096, 4096)
        assert m.count("gcache.remote_lookups") == 1
        assert m.count("gcache.remote_hits") == 0
        assert m.count("iod.reads") >= 1

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_self_homed_blocks_skip_peer_lookup():
    cluster = make_gcache_cluster()
    a = cluster.client("node0")
    m = cluster.metrics

    def app(env):
        f = yield from a.open("/g")
        directory = cluster.cache_modules["node0"].gcache.directory
        block_no = next(
            i for i in range(64) if directory.home_of((f.file_id, i)) == "node0"
        )
        yield from a.read(f, block_no * 4096, 4096)
        assert m.count("gcache.remote_lookups") == 0

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_remote_hit_data_integrity():
    cluster = make_gcache_cluster()
    a = cluster.client("node0")
    b = cluster.client("node1")

    def app(env):
        f = yield from a.open("/g")
        raw = cluster.client("node0", use_cache=False)
        payload = bytes(range(256)) * 16
        yield from raw.write(f, 0, 4096, payload)
        yield from a.read(f, 0, 4096)  # cache everywhere relevant
        got = yield from b.read(f, 0, 4096, want_data=True)
        assert got == payload

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)


def test_remote_hit_cheaper_than_cold_iod_read():
    """With cold iod page caches (tiny), a peer hit should beat a
    disk-bound iod read."""
    cluster = make_gcache_cluster(compute_nodes=2, iod_nodes=2)
    # shrink the iod page caches to force disk on iod misses
    for iod in cluster.iods:
        iod.node.pagecache.capacity_blocks = 0
        iod.node.pagecache._lru.clear()
    a = cluster.client("node0")
    b = cluster.client("node1")
    times = {}

    def app(env):
        f = yield from a.open("/g")
        directory = cluster.cache_modules["node0"].gcache.directory
        block_no = next(
            i for i in range(64) if directory.home_of((f.file_id, i)) == "node0"
        )
        offset = block_no * 4096
        t0 = env.now
        yield from a.read(f, offset, 4096)  # disk-bound cold read
        times["cold"] = env.now - t0
        t0 = env.now
        yield from b.read(f, offset, 4096)  # peer hit
        times["peer"] = env.now - t0

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)
    assert times["peer"] < times["cold"] / 3


def test_gcache_disabled_by_default():
    from tests.conftest import make_cluster

    cluster = make_cluster()
    assert cluster.cache_modules["node0"].gcache is None
