"""Tests for the two fabric models (shared hub vs switched)."""

import pytest

from repro.net import Network, SharedHubFabric, SwitchedFabric
from repro.sim import Environment


def _timed_transfer(env, fabric, src, dst, size, finish, tag):
    def proc(env):
        yield from fabric.transmit(src, dst, size)
        finish[tag] = env.now

    env.process(proc(env))


def test_switched_validation():
    env = Environment()
    with pytest.raises(ValueError):
        SwitchedFabric(env, bandwidth_bps=0)
    with pytest.raises(ValueError):
        SwitchedFabric(env, frame_bytes=0)


def test_switched_negative_size_rejected():
    env = Environment()
    fab = SwitchedFabric(env)

    def proc(env):
        yield from fab.transmit("a", "b", -1)

    p = env.process(proc(env))
    env.run()
    assert not p.ok and isinstance(p.value, ValueError)


def test_switched_disjoint_pairs_do_not_contend():
    """a->b and c->d run at full speed simultaneously on a switch."""
    env = Environment()
    fab = SwitchedFabric(env, bandwidth_bps=100e6, base_latency_s=0)
    finish = {}
    _timed_transfer(env, fab, "a", "b", 2**20, finish, "ab")
    _timed_transfer(env, fab, "c", "d", 2**20, finish, "cd")
    env.run()
    solo = 2**20 * 8 / 100e6
    assert finish["ab"] == pytest.approx(solo, rel=0.02)
    assert finish["cd"] == pytest.approx(solo, rel=0.02)


def test_shared_hub_disjoint_pairs_do_contend():
    """The same two transfers on a hub each take ~2x solo time."""
    env = Environment()
    fab = SharedHubFabric(env, bandwidth_bps=100e6, base_latency_s=0)
    finish = {}
    _timed_transfer(env, fab, "a", "b", 2**20, finish, "ab")
    _timed_transfer(env, fab, "c", "d", 2**20, finish, "cd")
    env.run()
    solo = 2**20 * 8 / 100e6
    assert finish["ab"] >= 1.9 * solo
    assert finish["cd"] >= 1.9 * solo


def test_switched_shared_receiver_contends():
    """Two senders to one receiver split the receiver's port rate."""
    env = Environment()
    fab = SwitchedFabric(env, bandwidth_bps=100e6, base_latency_s=0)
    finish = {}
    _timed_transfer(env, fab, "a", "x", 2**20, finish, "ax")
    _timed_transfer(env, fab, "b", "x", 2**20, finish, "bx")
    env.run()
    solo = 2**20 * 8 / 100e6
    assert finish["ax"] >= 1.8 * solo
    assert finish["bx"] >= 1.8 * solo


def test_switched_shared_sender_contends():
    env = Environment()
    fab = SwitchedFabric(env, bandwidth_bps=100e6, base_latency_s=0)
    finish = {}
    _timed_transfer(env, fab, "x", "a", 2**20, finish, "xa")
    _timed_transfer(env, fab, "x", "b", 2**20, finish, "xb")
    env.run()
    solo = 2**20 * 8 / 100e6
    assert finish["xa"] >= 1.8 * solo
    assert finish["xb"] >= 1.8 * solo


def test_switched_full_duplex():
    """a->b and b->a can run simultaneously at full rate (full duplex)."""
    env = Environment()
    fab = SwitchedFabric(env, bandwidth_bps=100e6, base_latency_s=0)
    finish = {}
    _timed_transfer(env, fab, "a", "b", 2**20, finish, "ab")
    _timed_transfer(env, fab, "b", "a", 2**20, finish, "ba")
    env.run()
    solo = 2**20 * 8 / 100e6
    assert finish["ab"] == pytest.approx(solo, rel=0.02)
    assert finish["ba"] == pytest.approx(solo, rel=0.02)


def test_switched_unloaded_time_formula():
    env = Environment()
    fab = SwitchedFabric(env, bandwidth_bps=100e6, base_latency_s=1e-4)
    assert fab.transfer_time_unloaded(65536) == pytest.approx(
        1e-4 + 65536 * 8 / 100e6
    )


def test_switched_accounting():
    env = Environment()
    fab = SwitchedFabric(env, frame_bytes=1000)

    def proc(env):
        yield from fab.transmit("a", "b", 2500)

    env.process(proc(env))
    env.run()
    assert fab.bytes_transferred == 2500
    assert fab.frames_transferred == 3


def test_network_accepts_custom_fabric():
    env = Environment()
    fab = SharedHubFabric(env)
    net = Network(env, fabric=fab)
    assert net.fabric is fab
