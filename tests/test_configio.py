"""Tests for JSON config round-tripping."""

import io

import pytest

from repro.cluster.config import CacheConfig, ClusterConfig, CostModel
from repro.cluster.configio import (
    config_from_dict,
    dumps_config,
    load_config,
    loads_config,
)


def test_minimal_config():
    config = loads_config("{}")
    assert config.compute_nodes == ClusterConfig().compute_nodes
    assert config.cache.size_bytes == CacheConfig().size_bytes


def test_full_roundtrip():
    original = ClusterConfig(
        compute_nodes=6,
        iod_nodes=3,
        separate_iod_nodes=True,
        caching=True,
        cache=CacheConfig(size_bytes=2 * 1024 * 1024, replacement="exact-lru"),
        costs=CostModel(fabric="hub", bandwidth_bps=1e9),
    )
    text = dumps_config(original)
    back = loads_config(text)
    assert back == original


def test_nested_sections():
    config = loads_config(
        '{"compute_nodes": 2, "iod_nodes": 2,'
        ' "cache": {"flush_period_s": 0.01, "global_cache": true},'
        ' "costs": {"fabric": "hub"}}'
    )
    assert config.cache.flush_period_s == 0.01
    assert config.cache.global_cache is True
    assert config.costs.fabric == "hub"


def test_unknown_keys_rejected():
    with pytest.raises(ValueError, match="unknown cluster keys"):
        loads_config('{"chache": {}}')
    with pytest.raises(ValueError, match="unknown cache keys"):
        loads_config('{"cache": {"sizee": 1}}')
    with pytest.raises(ValueError, match="unknown costs keys"):
        loads_config('{"costs": {"fabrik": "hub"}}')


def test_validation_still_applies():
    with pytest.raises(ValueError):
        loads_config('{"compute_nodes": 0}')
    with pytest.raises(ValueError):
        loads_config('{"costs": {"fabric": "token-ring"}}')


def test_non_object_rejected():
    with pytest.raises(ValueError, match="must be an object"):
        config_from_dict([1, 2, 3])  # type: ignore[arg-type]


def test_load_from_file_object():
    config = load_config(io.StringIO('{"compute_nodes": 3, "iod_nodes": 3}'))
    assert config.compute_nodes == 3


def test_config_builds_working_cluster():
    from repro.cluster.cluster import Cluster

    config = loads_config(
        '{"compute_nodes": 2, "iod_nodes": 2, "caching": true}'
    )
    cluster = Cluster(config)
    client = cluster.client("node0")

    def app(env):
        f = yield from client.open("/cfg")
        yield from client.write(f, 0, 4096, b"c" * 4096)
        data = yield from client.read(f, 0, 4096, want_data=True)
        assert data == b"c" * 4096

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)
