"""Benchmark: the '< 400 us per 4 KB block' hit-path claim (Sec. 4.2).

Regenerates the paper's inline micro-measurement: the extra cost the
cache module adds to a socket call — hash lookup plus the copy of the
block to user space — must stay under 400 microseconds per 4 KB block.
"""

import pytest

from repro.experiments.overhead import PAPER_BOUND_S, measure_hit_cost

from benchmarks.conftest import once


@pytest.mark.parametrize("n_blocks", [1, 16, 64])
def test_hit_service_cost_per_block(benchmark, n_blocks):
    measurement = once(benchmark, lambda: measure_hit_cost(n_blocks))
    per_block = measurement.per_block_s
    benchmark.extra_info["per_block_us"] = per_block * 1e6
    assert per_block < PAPER_BOUND_S, (
        f"hit path costs {per_block * 1e6:.0f} us/block, "
        f"paper requires < {PAPER_BOUND_S * 1e6:.0f} us"
    )


def test_hit_cost_scales_linearly(benchmark):
    """Per-block cost must not grow with request size (O(1) lookup)."""

    def run():
        return measure_hit_cost(1), measure_hit_cost(64)

    small, large = once(benchmark, run)
    assert large.per_block_s <= small.per_block_s * 1.2
