"""Micro-benchmarks of the simulation engine itself.

Host-side performance (wall-clock per simulated event) bounds how big
a cluster/workload the library can simulate; these benches track it.
Unlike the figure benches, these use multiple rounds — they measure
the simulator, not the simulation.
"""

import pytest

from repro.net import Message, Network
from repro.sim import Environment, Resource, Store


def test_event_loop_throughput(benchmark):
    """Raw timeout scheduling: one process ping-ponging the clock."""

    def run():
        env = Environment()

        def ticker(env):
            for _ in range(10_000):
                yield env.timeout(1)

        env.process(ticker(env))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 10_000


def test_process_spawn_throughput(benchmark):
    """Spawning and completing many short-lived processes."""

    def run():
        env = Environment()

        def worker(env):
            yield env.timeout(1)

        for _ in range(5_000):
            env.process(worker(env))
        env.run()
        return env.now

    benchmark(run)


def test_resource_contention_throughput(benchmark):
    """FIFO resource handoffs (the CPU/lock hot path)."""

    def run():
        env = Environment()
        res = Resource(env, capacity=1)

        def worker(env):
            for _ in range(100):
                with res.request() as req:
                    yield req
                    yield env.timeout(0.001)

        for _ in range(20):
            env.process(worker(env))
        env.run()

    benchmark(run)


def test_store_handoff_throughput(benchmark):
    """Producer/consumer mailbox traffic (daemon queues)."""

    def run():
        env = Environment()
        store = Store(env)

        def producer(env):
            for i in range(5_000):
                yield store.put(i)

        def consumer(env):
            for _ in range(5_000):
                yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()

    benchmark(run)


def test_network_message_throughput(benchmark):
    """End-to-end message delivery through the switched fabric."""

    def run():
        env = Environment()
        net = Network(env)
        inbox = net.register("dst", 1)

        def sender(env):
            for _ in range(500):
                msg = Message(kind="bench", size_bytes=4096,
                              src="src", dst="dst")
                yield net.send(msg, 1)

        def receiver(env):
            for _ in range(500):
                yield inbox.get()

        env.process(sender(env))
        env.process(receiver(env))
        env.run()
        return net.messages_delivered

    assert benchmark(run) == 500
