"""Ablation benchmarks for the design choices DESIGN.md calls out.

1. clock (approximate LRU) vs exact LRU replacement;
2. write-behind flush period;
3. harvester watermarks (eviction ahead of demand);
4. request splitting on a cached mid-run block;
5. sync_write coherence cost vs default writes;
6. the global-cache extension;
7. shared-hub vs switched fabric.
"""

import pytest

from repro.cluster.config import CacheConfig, ClusterConfig
from repro.workload import MicroBenchParams, run_instances

from benchmarks.conftest import once, single_instance_outcome


def _outcome_with_cache(cache: CacheConfig, locality=0.5, d=65536, mode="read"):
    return single_instance_outcome(
        d, mode, True, locality, iterations=16, cache=cache
    )


# -- 1. replacement policy ---------------------------------------------------


def test_ablation_clock_vs_exact_lru(benchmark):
    """Hit ratios of clock and exact LRU should be comparable (the
    paper's justification for the cheaper policy)."""

    def run():
        ratios = {}
        for policy in ("clock", "exact-lru"):
            out = _outcome_with_cache(
                CacheConfig(replacement=policy), locality=0.7
            )
            ratios[policy] = out.cache_hit_ratio
        return ratios

    ratios = once(benchmark, run)
    benchmark.extra_info.update(ratios)
    assert ratios["clock"] > 0.4
    assert abs(ratios["clock"] - ratios["exact-lru"]) < 0.15, (
        f"approximate LRU should track exact LRU: {ratios}"
    )


# -- 2. flush period -----------------------------------------------------------


@pytest.mark.parametrize("period_s", [0.005, 0.030, 0.120])
def test_ablation_flush_period(benchmark, period_s):
    def run():
        out = _outcome_with_cache(
            CacheConfig(flush_period_s=period_s), locality=0.0, mode="write"
        )
        return out.mean_write_latency

    latency = once(benchmark, run)
    benchmark.extra_info["write_latency_s"] = latency
    assert latency > 0


def test_ablation_flush_period_tradeoff(benchmark):
    """A very long period leaves more dirty blocks exposed at the end
    (staleness), while write latency stays flat — quantify both."""

    def run():
        exposure = {}
        for period in (0.005, 0.5):
            out = _outcome_with_cache(
                CacheConfig(flush_period_s=period),
                locality=0.0,
                mode="write",
                d=16384,
            )
            dirty_left = sum(
                m.manager.n_dirty
                for m in out.cluster.cache_modules.values()
            )
            exposure[period] = dirty_left
        return exposure

    exposure = once(benchmark, run)
    benchmark.extra_info["dirty_blocks_left"] = str(exposure)
    assert exposure[0.5] >= exposure[0.005]


# -- 3. watermarks ---------------------------------------------------------------


@pytest.mark.parametrize("low,high", [(0.02, 0.05), (0.10, 0.25), (0.30, 0.60)])
def test_ablation_watermarks(benchmark, low, high):
    def run():
        out = _outcome_with_cache(
            CacheConfig(low_watermark=low, high_watermark=high),
            locality=0.0,
            d=262144,
        )
        return out.mean_read_latency

    latency = once(benchmark, run)
    benchmark.extra_info["read_latency_s"] = latency
    assert latency > 0


# -- 4. request splitting -----------------------------------------------------------


def test_ablation_request_splitting(benchmark):
    """Splitting avoids re-fetching the cached mid-run blocks: with it
    disabled, strictly more bytes cross the wire."""

    def scenario(split: bool):
        from repro.cluster.cluster import Cluster

        config = ClusterConfig(
            compute_nodes=1,
            iod_nodes=1,
            caching=True,
            cache=CacheConfig(split_on_cached_block=split),
        )
        cluster = Cluster(config)
        client = cluster.client("node0")

        def app(env):
            f = yield from client.open("/split")
            # cache every other block of a 32-block run
            for i in range(0, 32, 2):
                yield from client.read(f, i * 4096, 4096)
            yield from client.read(f, 0, 32 * 4096)

        proc = cluster.env.process(app(cluster.env))
        cluster.env.run(until=proc)
        return cluster.metrics.count("cache.fetched_bytes")

    def run():
        return scenario(True), scenario(False)

    with_split, without_split = once(benchmark, run)
    benchmark.extra_info["fetched_with_split"] = with_split
    benchmark.extra_info["fetched_without_split"] = without_split
    assert with_split < without_split


# -- 5. sync_write cost ---------------------------------------------------------------


def test_ablation_sync_write_cost(benchmark):
    """Coherence is not free: sync_write pays the round trip that the
    default write path hides."""

    def run():
        buffered = single_instance_outcome(16384, "write", True, 0.0, p=2)
        coherent = single_instance_outcome(16384, "sync-write", True, 0.0, p=2)
        return (
            buffered.mean_write_latency,
            coherent.cluster.metrics.mean("client.sync_write_latency"),
        )

    buffered, coherent = once(benchmark, run)
    benchmark.extra_info["buffered_s"] = buffered
    benchmark.extra_info["coherent_s"] = coherent
    assert coherent > buffered


# -- 6. global cache -------------------------------------------------------------------


def test_ablation_global_cache(benchmark):
    """With cold iod page caches and a random-access (single-block)
    read pattern, peer lookups replace ~half of the disk seeks.

    The pattern matters: block homes are hash-interleaved, so for
    *sequential* scans the global cache actually fragments the iods'
    disk runs and loses — the bench uses random 4 KB reads, where both
    variants pay one seek per iod miss and the peer hits are pure
    savings.
    """
    from repro.cluster.cluster import Cluster

    def scenario(global_cache: bool) -> float:
        config = ClusterConfig(
            compute_nodes=2,
            iod_nodes=2,
            caching=True,
            cache=CacheConfig(global_cache=global_cache),
            pagecache_blocks=0,  # cold iods: misses hit the disk
        )
        cluster = Cluster(config)
        a = cluster.client("node0")
        b = cluster.client("node1")
        blocks = [7, 91, 23, 55, 3, 78, 41, 66, 12, 99, 30, 84]

        def app(env):
            f = yield from a.open("/g")
            for blk in blocks:  # node0 faults them in (random access)
                yield from a.read(f, blk * 4096, 4096)
            t0 = env.now
            for blk in blocks:  # node1: peer hit vs disk seek
                yield from b.read(f, blk * 4096, 4096)
            return env.now - t0

        proc = cluster.env.process(app(cluster.env))
        return cluster.env.run(until=proc)

    def run():
        return scenario(False), scenario(True)

    local_only, cooperative = once(benchmark, run)
    benchmark.extra_info["local_only_s"] = local_only
    benchmark.extra_info["global_cache_s"] = cooperative
    assert cooperative < local_only, (
        f"peer hits should beat disk: {cooperative:.4f}s vs {local_only:.4f}s"
    )


# -- 7. readahead ----------------------------------------------------------------------


def test_ablation_readahead_sequential_scan(benchmark):
    """Sequential scans with think time: prefetch hides iod latency."""
    from repro.cluster.cluster import Cluster

    def scenario(readahead: bool) -> float:
        config = ClusterConfig(
            compute_nodes=1,
            iod_nodes=1,
            caching=True,
            cache=CacheConfig(readahead=readahead),
        )
        cluster = Cluster(config)
        client = cluster.client("node0")

        def app(env):
            f = yield from client.open("/scan")
            t0 = env.now
            for i in range(32):
                yield from client.read(f, i * 16384, 16384)
                yield env.timeout(2e-3)  # compute on the data
            return env.now - t0

        proc = cluster.env.process(app(cluster.env))
        return cluster.env.run(until=proc)

    def run():
        return scenario(False), scenario(True)

    plain, prefetched = once(benchmark, run)
    benchmark.extra_info["no_readahead_s"] = plain
    benchmark.extra_info["readahead_s"] = prefetched
    assert prefetched < plain


# -- 8. fabric model ---------------------------------------------------------


def test_ablation_hub_vs_switch(benchmark):
    """The paper's literal shared hub serialises everything: the same
    workload must be slower than on the switched default."""

    def run():
        hub = single_instance_outcome(
            262144, "read", False, 0.0, fabric="hub"
        )
        switch = single_instance_outcome(
            262144, "read", False, 0.0, fabric="switch"
        )
        return hub.mean_read_latency, switch.mean_read_latency

    hub, switch = once(benchmark, run)
    benchmark.extra_info["hub_s"] = hub
    benchmark.extra_info["switch_s"] = switch
    assert hub > switch
