"""Benchmark: application-level workloads (paper's future-work item on
application benchmarks with data sharing).

Runs each synthetic application of :mod:`repro.workload.apps` and the
Figure-1-style mix, with and without the cache module, asserting the
expected per-pattern benefit.
"""

import pytest

from repro.cluster.config import ClusterConfig
from repro.cluster.cluster import Cluster
from repro.workload.apps import (
    ArchiveMaintainer,
    AssociationMiningScan,
    OutOfCoreMatrixMultiply,
    VideoFrameExtractor,
    analysis_cycle_mix,
    run_app_mix,
)

from benchmarks.conftest import once


def _cluster(caching: bool, nodes: int = 2, separate_iods: bool = False) -> Cluster:
    return Cluster(
        ClusterConfig(
            compute_nodes=nodes,
            iod_nodes=nodes,
            caching=caching,
            separate_iod_nodes=separate_iods,
        )
    )


@pytest.mark.parametrize(
    "app_cls,kwargs,expect_benefit",
    [
        (OutOfCoreMatrixMultiply, {"tiles": 4}, True),
        (AssociationMiningScan, {"dataset_bytes": 512 * 1024, "passes": 4}, True),
        (VideoFrameExtractor, {"frames": 24, "stride": 1}, False),
        (ArchiveMaintainer, {"batches": 16}, True),
    ],
)
def test_single_app(benchmark, app_cls, kwargs, expect_benefit):
    def run():
        times = {}
        for caching in (True, False):
            # dedicated iod pool: all data crosses the wire, so the
            # cache's savings (or pure overhead) are fully visible
            cluster = _cluster(caching, nodes=1, separate_iods=True)
            app = app_cls(cluster, "node0", **kwargs)
            times[caching] = run_app_mix(cluster, [app])[0].elapsed_s
        return times

    times = once(benchmark, run)
    benchmark.extra_info["caching_s"] = times[True]
    benchmark.extra_info["no_caching_s"] = times[False]
    if expect_benefit:
        assert times[True] < times[False], (
            f"{app_cls.__name__} should benefit from caching: {times}"
        )
    else:
        # streaming without reuse: caching must at least not hurt much
        assert times[True] < times[False] * 1.3


def test_analysis_cycle_mix(benchmark):
    """The multiprogrammed Figure-1 mix: shared cache wins overall."""

    def run():
        times = {}
        for caching in (True, False):
            cluster = _cluster(caching)
            apps = analysis_cycle_mix(cluster, ["node0", "node1"])
            results = run_app_mix(cluster, apps)
            times[caching] = max(r.elapsed_s for r in results)
        return times

    times = once(benchmark, run)
    benchmark.extra_info["caching_s"] = times[True]
    benchmark.extra_info["no_caching_s"] = times[False]
    assert times[True] < times[False]


def test_mix_inter_application_hits(benchmark):
    """The mix's speedup comes from cross-application hits: verify the
    counters actually show them."""

    def run():
        cluster = _cluster(True)
        apps = analysis_cycle_mix(cluster, ["node0", "node1"])
        run_app_mix(cluster, apps)
        return cluster.metrics.count("cache.hits")

    hits = once(benchmark, run)
    benchmark.extra_info["cache_hits"] = hits
    assert hits > 0
