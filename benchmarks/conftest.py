"""Helpers shared by the benchmark harness.

Every benchmark runs a whole cluster simulation, so each is executed
pedantically (one round, one iteration): the *simulated* seconds are
the figure's y-values; pytest-benchmark's wall-clock column measures
the simulator itself.  Each bench also asserts the paper's qualitative
claim for its figure, so ``pytest benchmarks/ --benchmark-only`` is
simultaneously a reproduction check.
"""

from __future__ import annotations

import typing as _t

from repro.cluster.config import CacheConfig, ClusterConfig
from repro.workload import MicroBenchParams, RunOutcome, run_instances


def single_instance_outcome(
    d: int,
    mode: str,
    caching: bool,
    locality: float,
    p: int = 4,
    iterations: int = 16,
    cache: CacheConfig | None = None,
    fabric: str | None = None,
) -> RunOutcome:
    """One micro-benchmark instance on its own cluster (Figs 4/5)."""
    kwargs: dict[str, _t.Any] = {}
    if cache is not None:
        kwargs["cache"] = cache
    if fabric is not None:
        from repro.cluster.config import CostModel

        kwargs["costs"] = CostModel(fabric=fabric)
    config = ClusterConfig(
        compute_nodes=p, iod_nodes=p, caching=caching, **kwargs
    )
    params = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=d,
        iterations=iterations,
        mode=mode,
        locality=locality,
        partition_bytes=4 * 2**20,
        warmup=(mode == "read"),
    )
    return run_instances(config, [params])


def two_instance_outcome(
    d: int,
    locality: float,
    sharing: float,
    caching: bool,
    p: int = 4,
    total_bytes: int = 2 * 2**20,
    node_sets: list[list[str]] | None = None,
    compute_nodes: int | None = None,
    cache: CacheConfig | None = None,
) -> RunOutcome:
    """Two concurrent instances (Figs 6/7/8)."""
    kwargs: dict[str, _t.Any] = {}
    if cache is not None:
        kwargs["cache"] = cache
    n_nodes = compute_nodes if compute_nodes is not None else p
    config = ClusterConfig(
        compute_nodes=n_nodes, iod_nodes=n_nodes, caching=caching, **kwargs
    )
    if node_sets is None:
        node_sets = [config.compute_node_names()[:p]] * 2
    instances = [
        MicroBenchParams(
            nodes=node_sets[i],
            request_size=d,
            iterations=max(1, total_bytes // d),
            mode="read",
            locality=locality,
            sharing=sharing,
            instance=i,
            partition_bytes=4 * 2**20,
            warmup=True,
            seed=42,
        )
        for i in range(2)
    ]
    return run_instances(config, instances)


def once(benchmark, fn: _t.Callable[[], _t.Any]) -> _t.Any:
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
