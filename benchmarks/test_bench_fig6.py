"""Benchmark: Figure 6 — inter-application caching benefits (p=4).

Two instances time-share the same four nodes.  Asserts: caching beats
original PVFS for non-zero sharing even at l=0; benefits grow with
sharing and with locality.
"""

import pytest

from benchmarks.conftest import once, two_instance_outcome

D = 65536


@pytest.mark.parametrize("sharing", [0.25, 0.50, 0.75, 1.00])
def test_fig6a_l0_sharing_beats_nocache(benchmark, sharing):
    def run():
        cached = two_instance_outcome(D, 0.0, sharing, True)
        plain = two_instance_outcome(D, 0.0, sharing, False)
        return cached.makespan, plain.makespan

    cached, plain = once(benchmark, run)
    benchmark.extra_info["caching_s"] = cached
    benchmark.extra_info["no_caching_s"] = plain
    # "even in the l=0 case ... the caching version does better than
    # the original PVFS for nearly all non-zero percentages"
    assert cached < plain, (
        f"s={sharing}: caching {cached:.3f}s vs no-caching {plain:.3f}s"
    )


def test_fig6a_benefit_grows_with_sharing(benchmark):
    def run():
        return [
            two_instance_outcome(D, 0.0, s, True).makespan
            for s in (0.25, 0.75)
        ]

    low_sharing, high_sharing = once(benchmark, run)
    assert high_sharing < low_sharing


@pytest.mark.parametrize("locality", [0.5, 1.0])
def test_fig6bc_locality_amplifies(benchmark, locality):
    def run():
        cached = two_instance_outcome(D, locality, 0.5, True)
        plain = two_instance_outcome(D, locality, 0.5, False)
        return cached.makespan, plain.makespan

    cached, plain = once(benchmark, run)
    benchmark.extra_info["speedup"] = plain / cached
    floor = 1.5 if locality == 0.5 else 3.0
    assert plain / cached > floor, (
        f"l={locality}: speedup {plain / cached:.2f}x below {floor}x"
    )


def test_fig6_total_time_falls_with_block_size(benchmark):
    """Total data constant: bigger requests => fewer calls => less time."""

    def run():
        return [
            two_instance_outcome(d, 0.5, 0.5, True).makespan
            for d in (4096, 262144)
        ]

    small_d, large_d = once(benchmark, run)
    assert large_d < small_d
