"""Benchmark-regression harness gating the engine fast paths.

Tracks host-side numbers in ``BENCH_engine.json`` at the repo root so
the perf trajectory is visible across PRs:

* ``events_per_sec`` — raw event-loop throughput (timeout
  schedule/fire pairs per wall-clock second, best of three);
* ``fig4_quick_sweep_s`` — end-to-end wall-clock of the quick fig4
  sweep run serially (``REPRO_SWEEP_WORKERS=1``), i.e. the simulator
  cost of a real figure reproduction with parallelism factored out;
* ``fig4_quick_sweep_fluid_s`` — the same sweep under
  ``REPRO_NET_MODEL=fluid`` (analytic bandwidth sharing);
* ``fig4_wire_hub_frames_s`` / ``fig4_wire_hub_fluid_s`` — fig4's
  transfer pattern (p=4 senders, the figure's request sizes) replayed
  through the shared-hub network alone, per contention model.  This
  isolates the network simulation cost the fluid model attacks; the
  harness additionally *gates the speedup*: the fluid replay must be
  at least ``FLUID_SPEEDUP_FLOOR``x faster than the frame replay.
* ``disk_replay_mech_s`` / ``disk_replay_queued_s`` — the iod miss
  path (bulk page-cache probe + coalesced ``io_batch``) replayed
  against the disk stack alone, per disk model.  Gated live like the
  wire replay: the queued model must stay at least
  ``DISK_SPEEDUP_FLOOR``x faster than the mechanical spindle.
* ``disk_cold_sweep_mech_s`` / ``disk_cold_sweep_queued_s`` — a quick
  fig5/fig8-style cold-cache read sweep through the full cluster with
  the page cache disabled (disk-bound end to end), per disk model;
  the queued model must beat the mechanical one outright.
* ``macro_replay_off_s`` / ``macro_replay_on_s`` — a hit-burst read
  stream (one node re-reading a cache-resident region) with the
  macro-event fast path off vs on (DESIGN.md §14).  Gated live like
  the wire/disk replays: macro-on must be at least
  ``MACRO_SPEEDUP_FLOOR``x faster in wall-clock *and* process at
  least ``MACRO_EVENT_RATIO_FLOOR``x fewer events (the event count
  is deterministic, so that ratio is exactly host-independent).
* ``fig4_quick_sweep_macro_s`` — the serial quick fig4 sweep with
  the macro path on.  Fig4 is the zero-locality *overhead* figure —
  every read misses, the macro path only ever declines — so this
  entry guards the probe-and-bail overhead, not a speedup.
* ``trace_replay_s`` — a recorded fig4-style microbench trace
  replayed closed-loop through :class:`TraceReplayer`.  Two
  host-independent gates ride along: the replay's event count must be
  identical across repeats (replay is deterministic), and must stay
  within ``TRACE_REPLAY_EVENT_OVERHEAD``x of the original recorded
  run's event count — replaying a trace must not inflate the event
  budget of the run it reproduces.
* ``openloop_knee_256_s`` / ``mgr_shard_speedup`` — the scaling
  experiment's knee point (DESIGN.md §18): a churn-heavy open-loop
  workload offered at 16k ops/s to a 256-node cluster, replayed with
  1 and with 4 metadata shards.  The wall clock of the single-shard
  point is baseline-gated; the *completed-ops speedup* of 4 shards
  over 1 is simulated time, hence deterministic and exactly
  host-independent, and must reach ``MGR_SHARD_SPEEDUP_FLOOR``.
* ``shard_replay_serial_s`` / ``shard_replay_4w_s`` — a 64-node,
  64-process trace replayed serially vs split across 4 conservative
  parallel engine shards in worker processes (DESIGN.md §17).  The
  host-independent gate is the *event split*: the sharded run's total
  event count divided by its busiest shard's count must reach
  ``SHARD_EVENT_SPLIT_FLOOR`` — the deterministic upper bound on
  parallel speedup, which round-robin sharding must keep well above
  half the shard count.  When this host has the cores to exploit the
  split (``os.cpu_count() >= 4``), the wall clock itself is gated
  too: the 4-worker replay must run ``SHARD_WALLCLOCK_FLOOR``x faster
  than the serial one.

If the baseline file is missing — or ``REPRO_BENCH_UPDATE=1`` is set —
the current numbers are written as the new baseline and the test is
skipped.  Otherwise the test fails when either metric regresses by
more than ``REGRESSION_FACTOR``; the factor is deliberately generous
because absolute numbers vary across hosts and CI runners.  After an
intentional engine change, refresh with::

    REPRO_BENCH_UPDATE=1 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_regression.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cluster.config import (
    DISK_MODEL_ENV_VAR,
    ENGINE_MACRO_ENV_VAR,
    ENGINE_SHARDS_ENV_VAR,
    NET_MODEL_ENV_VAR,
    SHARD_BACKEND_ENV_VAR,
)
from repro.experiments.parallel import WORKERS_ENV_VAR
from repro.sim import Environment

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Set to refresh the committed baseline instead of comparing to it.
UPDATE_ENV_VAR = "REPRO_BENCH_UPDATE"

#: A metric may be up to this many times worse than baseline before the
#: test fails.  Generous on purpose: the baseline is measured on one
#: host and compared on many.
REGRESSION_FACTOR = 2.5

#: The fluid model must keep the fig4 wire replay at least this many
#: times faster than the frame model.  Measured live (both numbers
#: from the same host in the same run), so unlike the baseline gates
#: this ratio is host-independent; observed ~3.5-4x.
FLUID_SPEEDUP_FLOOR = 2.0

#: The queued disk model must keep the iod-miss-path replay at least
#: this many times faster than the mechanical spindle.  Also measured
#: live from the same host in the same run; observed well above the
#: floor (the mechanical model pays a process spawn + Resource
#: round-trip per coalesced run, the queued model two heap events per
#: batch).
DISK_SPEEDUP_FLOOR = 2.0

#: The macro-event fast path must keep the hit-burst replay at least
#: this many times faster than the event-level path.  Live same-run
#: ratio; observed ~3.5-4x (one event per fully-hit read vs the
#: syscall-compute + lookup-compute + copy-compute event train).
MACRO_SPEEDUP_FLOOR = 2.0

#: ...and must process at least this many times fewer events for the
#: same simulated reads.  Event counts are deterministic, so this
#: ratio is exactly host-independent; observed ~5.9x.
MACRO_EVENT_RATIO_FLOOR = 2.5

#: Replaying a recorded run may process at most this many times the
#: events of the run it was recorded from.  Event counts are
#: deterministic, so the ratio is exactly host-independent; observed
#: ~1.0x (the replayer drives the same client calls the generator
#: did, minus the generator's own bookkeeping).
TRACE_REPLAY_EVENT_OVERHEAD = 1.5

#: A 4-shard replay must spread the event budget so that
#: total / busiest-shard reaches this floor.  Event counts are
#: deterministic, so the ratio is exactly host-independent; it bounds
#: the achievable parallel speedup from above (observed ~3.8x on the
#: 64-node bench trace — round-robin keeps the shards balanced).
SHARD_EVENT_SPLIT_FLOOR = 2.0

#: Four metadata shards must complete at least this many times the
#: ops/s of the single mgr at the 256-node open-loop knee.  Completed
#: throughput is simulated time — deterministic, so this ratio is
#: exactly host-independent; observed ~2.5x (the single mgr pins at
#: its ~6.6k opens/s service capacity).
MGR_SHARD_SPEEDUP_FLOOR = 2.0

#: With at least 4 real cores the wall clock must follow the split:
#: the 4-worker replay at least this many times faster than serial.
#: Only checked when ``os.cpu_count() >= 4`` — on fewer cores the
#: workers time-slice one CPU and the barrier pipes are pure overhead.
SHARD_WALLCLOCK_FLOOR = 2.0


def _measure_events_per_sec(n_events: int = 200_000, rounds: int = 3) -> float:
    """Timeout schedule+fire pairs per second, best of ``rounds``."""

    def ticker(env):
        for _ in range(n_events):
            yield env.timeout(1)

    best = 0.0
    for _ in range(rounds):
        env = Environment()
        env.process(ticker(env))
        t0 = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - t0
        assert env.now == n_events
        best = max(best, n_events / elapsed)
    return best


def _measure_fig4_quick_sweep_s() -> float:
    """Wall-clock seconds for the serial quick fig4 sweep."""
    from repro.experiments.fig4 import run_fig4

    t0 = time.perf_counter()
    run_fig4(quick=True)
    return time.perf_counter() - t0


def _measure_fig4_wire_sweep_s(net_model: str, rounds: int = 3) -> float:
    """Fig4's transfer pattern through the shared hub alone, best of 3.

    Four senders (fig4's p=4) each stream the figure's request sizes
    as back-to-back messages over a hub-topology network.  No cache,
    disk, or PVFS machinery — this is the pure network-simulation cost
    the fluid model replaces with analytic rate sharing.
    """
    from repro.net import FluidFabric, Network, SharedHubFabric
    from repro.net.message import Message

    senders = 4
    msgs_per_size = 32
    sizes = (4096, 65536, 262144, 1048576)

    def replay() -> float:
        env = Environment()
        fabric = (
            FluidFabric(env, mode="hub")
            if net_model == "fluid"
            else SharedHubFabric(env)
        )
        net = Network(env, fabric=fabric)
        inboxes = {
            i: net.register(f"rx{i}", 1) for i in range(senders)
        }

        def stream(i):
            for size in sizes:
                for _ in range(msgs_per_size):
                    message = Message(
                        kind="data",
                        size_bytes=size,
                        src=f"tx{i}",
                        dst=f"rx{i}",
                    )
                    yield net.deliver(message, inboxes[i])
                    yield inboxes[i].get()

        for i in range(senders):
            env.process(stream(i))
        t0 = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - t0
        assert (
            net.messages_delivered == senders * len(sizes) * msgs_per_size
        )
        return elapsed

    return min(replay() for _ in range(rounds))


def _measure_disk_replay_s(disk_model: str, rounds: int = 3) -> float:
    """The iod miss path against the disk stack alone, best of 3.

    Four readers sweep disjoint regions whose *odd* blocks are already
    page-cache resident, so every 16-block request coalesces into 8
    single-block runs — the worst case for per-run process + Resource
    simulation and exactly the pattern
    :meth:`repro.pvfs.iod.Iod._ensure_resident` drives: one
    ``lookup_many`` probe, one ``io_batch`` call, residency inserted
    per run as it lands.
    """
    from repro.disk import DiskModel, PageCache, QueuedDiskModel

    readers = 4
    requests = 64
    span = 16  # blocks per request
    block = 4096
    disk_cls = QueuedDiskModel if disk_model == "queued" else DiskModel

    def replay() -> float:
        env = Environment()
        disk = disk_cls(env)
        pagecache = PageCache(capacity_blocks=readers * requests * span)
        for r in range(readers):
            base = r * requests * span
            for resident in range(base + 1, base + requests * span, 2):
                pagecache.insert(0, resident)

        def reader(r):
            base = r * requests * span
            for i in range(requests):
                first = base + i * span
                _hits, runs = pagecache.lookup_many(
                    0, range(first, first + span)
                )
                if not runs:
                    continue
                yield from disk.io_batch(
                    0,
                    [(f * block, n * block) for f, n in runs],
                    on_run_complete=lambda j, runs=runs: pagecache.insert_many(
                        0, runs[j][0], runs[j][1]
                    ),
                )

        for r in range(readers):
            env.process(reader(r))
        t0 = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - t0
        assert disk.reads == readers * requests * span // 2
        return elapsed

    return min(replay() for _ in range(rounds))


def _measure_disk_cold_sweep_s(disk_model: str, rounds: int = 2) -> float:
    """A quick fig5/fig8-style cold-cache sweep, end to end (best of 2).

    Four uncached compute nodes stream reads through the full PVFS
    stack with the iod page caches disabled, so every request reaches
    the disk model — the disk-bound regime the queued model attacks.
    Runs under the fluid network model so the comparison isolates the
    storage layer's event budget (the frame model's per-frame events
    would dominate the wall clock and drown the disk's share).
    """
    from repro.cluster.config import ClusterConfig
    from repro.workload import MicroBenchParams, run_instances

    total_bytes = 2 * 2**20

    def one_sweep() -> float:
        t0 = time.perf_counter()
        for d in (16384, 65536, 262144):
            config = ClusterConfig(
                compute_nodes=4,
                iod_nodes=4,
                caching=False,
                pagecache_blocks=0,
                net_model="fluid",
                disk_model=disk_model,
            )
            params = MicroBenchParams(
                nodes=config.compute_node_names(),
                request_size=d,
                iterations=max(1, total_bytes // d),
                mode="read",
                locality=0.0,
                partition_bytes=4 * 2**20,
                seed=42,
            )
            run_instances(config, [params])
        return time.perf_counter() - t0

    return min(one_sweep() for _ in range(rounds))


def _measure_macro_replay(
    engine_macro: bool, rounds: int = 3
) -> tuple[float, int]:
    """A hit-burst read stream against one resident region.

    One compute node writes a 256 KB region into its cache module,
    then re-reads it in 4 KB requests — every read a full hit, the
    regime the macro-event fast path coalesces.  Returns (best
    wall-clock seconds, events processed during the read phase); the
    event count is deterministic across rounds and hosts.
    """
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import ClusterConfig

    n_reads = 3000
    read_bytes = 4096
    region = 256 * 1024

    def replay() -> tuple[float, int]:
        cluster = Cluster(
            ClusterConfig(
                compute_nodes=1, iod_nodes=1, engine_macro=engine_macro
            )
        )
        env = cluster.env
        client = cluster.client("node0")

        def setup(env):
            handle = yield from client.open("/hot")
            yield from client.write(handle, 0, region)
            return handle

        setup_proc = env.process(setup(env))
        env.run(until=setup_proc)
        handle = setup_proc.value

        def reader(env):
            for i in range(n_reads):
                yield from client.read(
                    handle, (i * read_bytes) % region, read_bytes
                )

        before = env.sched_stats()["events_processed"]
        read_proc = env.process(reader(env))
        t0 = time.perf_counter()
        env.run(until=read_proc)
        elapsed = time.perf_counter() - t0
        events = env.sched_stats()["events_processed"] - before
        hits = cluster.metrics.counters.get("cache.hits", 0)
        assert hits >= n_reads, f"replay not hit-dominated: {hits} hits"
        return elapsed, events

    results = [replay() for _ in range(rounds)]
    return min(r[0] for r in results), results[0][1]


def _measure_trace_replay(rounds: int = 3) -> tuple[float, int, int]:
    """A recorded microbench trace replayed closed-loop, best of 3.

    Records a fig4-style read run (p=2, 64 x 4 KB requests per rank)
    into the trace IR, then replays it against a fresh cluster of the
    same shape.  Returns (best wall-clock seconds, replay events
    processed, recorded-run events processed); both event counts are
    deterministic across rounds and hosts.
    """
    from repro.cluster.cluster import Cluster
    from repro.cluster.config import ClusterConfig
    from repro.workload import MicroBenchParams, run_instances
    from repro.workload.replay import TraceReplayer

    config = ClusterConfig(compute_nodes=2, iod_nodes=2)
    params = MicroBenchParams(
        nodes=config.compute_node_names(),
        request_size=4096,
        iterations=64,
        mode="read",
        locality=0.0,
        partition_bytes=2 * 2**20,
        seed=1234,
    )
    outcome = run_instances(config, [params], record=True)
    source_events = outcome.cluster.env.sched_stats()["events_processed"]
    trace = outcome.trace
    assert trace is not None and len(trace) == 2 * 64

    def replay() -> tuple[float, int]:
        cluster = Cluster(ClusterConfig(compute_nodes=2, iod_nodes=2))
        replayer = TraceReplayer(cluster, trace, preserve_timing=False)
        t0 = time.perf_counter()
        replayer.run()
        elapsed = time.perf_counter() - t0
        return elapsed, cluster.env.sched_stats()["events_processed"]

    results = [replay() for _ in range(rounds)]
    replay_events = {events for _, events in results}
    assert len(replay_events) == 1, (
        f"trace replay event count not deterministic: {replay_events}"
    )
    return min(r[0] for r in results), results[0][1], source_events


def _measure_shard_replay(rounds: int = 2) -> tuple[float, float, float]:
    """A 64-node trace replay, serial vs 4 process-backed shards.

    64 closed-loop processes share one striped file across a
    64-compute / 64-iod cluster — the scale regime the conservative
    parallel engine targets (DESIGN.md §17).  Returns (best serial
    seconds, best 4-worker seconds, event-split ratio); the split is
    deterministic across rounds and hosts.
    """
    from repro.cluster.config import ClusterConfig
    from repro.sim.parallel import run_sharded_replay
    from repro.workload.trace import Trace, TraceEvent

    procs, per = 64, 12
    events = []
    for i in range(procs):
        process = f"app-{i:02d}"
        for j in range(per):
            t = (j * procs + i) * 1e-4
            if j % 3 == 2:
                events.append(
                    TraceEvent(
                        time=t,
                        process=process,
                        path="/shared",
                        op="write",
                        offset=((i * per + j) % 64) * 4096,
                        nbytes=4096,
                    )
                )
            else:
                events.append(
                    TraceEvent(
                        time=t,
                        process=process,
                        path="/shared",
                        op="read",
                        offset=((j * 17 + i) % 128) * 4096,
                        nbytes=65536,
                    )
                )
    trace = Trace(events=events)
    config = ClusterConfig(compute_nodes=64, iod_nodes=64, caching=True)

    def serial() -> float:
        t0 = time.perf_counter()
        run_sharded_replay(config, trace, shards=1, hash_enabled=False)
        return time.perf_counter() - t0

    def sharded() -> tuple[float, float]:
        t0 = time.perf_counter()
        out = run_sharded_replay(
            config, trace, shards=4, backend="process", hash_enabled=False
        )
        elapsed = time.perf_counter() - t0
        return elapsed, out.events_processed / max(1, out.max_shard_events)

    serial_s = min(serial() for _ in range(rounds))
    results = [sharded() for _ in range(rounds)]
    splits = {round(split, 6) for _, split in results}
    assert len(splits) == 1, (
        f"shard event split not deterministic: {splits}"
    )
    return serial_s, min(r[0] for r in results), results[0][1]


def _measure_openloop_knee() -> tuple[float, float]:
    """The 256-node open-loop knee point, 1 vs 4 mgr shards.

    Runs the scaling experiment's saturating workload (churn-heavy,
    write-only, uniform offsets — the pure metadata-stress case) once
    per shard count.  Returns (wall-clock seconds of the single-shard
    point, completed-ops speedup of 4 shards over 1); the speedup is
    a ratio of simulated times and therefore deterministic.
    """
    from repro.experiments.scaling import scaling_point

    t0 = time.perf_counter()
    one = scaling_point(256, 1)
    knee_s = time.perf_counter() - t0
    four = scaling_point(256, 4)
    return knee_s, four["completed_ops_per_s"] / one["completed_ops_per_s"]


def test_engine_regression(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV_VAR, "1")  # comparable across hosts
    monkeypatch.delenv(NET_MODEL_ENV_VAR, raising=False)
    monkeypatch.delenv(DISK_MODEL_ENV_VAR, raising=False)
    monkeypatch.delenv(ENGINE_MACRO_ENV_VAR, raising=False)
    monkeypatch.delenv(ENGINE_SHARDS_ENV_VAR, raising=False)
    monkeypatch.delenv(SHARD_BACKEND_ENV_VAR, raising=False)
    wire_frames = _measure_fig4_wire_sweep_s("frames")
    wire_fluid = _measure_fig4_wire_sweep_s("fluid")
    disk_mech = _measure_disk_replay_s("mech")
    disk_queued = _measure_disk_replay_s("queued")
    cold_mech = _measure_disk_cold_sweep_s("mech")
    cold_queued = _measure_disk_cold_sweep_s("queued")
    macro_off_s, macro_off_events = _measure_macro_replay(False)
    macro_on_s, macro_on_events = _measure_macro_replay(True)
    replay_s, replay_events, source_events = _measure_trace_replay()
    shard_serial_s, shard_4w_s, shard_split = _measure_shard_replay()
    knee_s, mgr_speedup = _measure_openloop_knee()
    fig4_frames = _measure_fig4_quick_sweep_s()
    monkeypatch.setenv(NET_MODEL_ENV_VAR, "fluid")
    fig4_fluid = _measure_fig4_quick_sweep_s()
    monkeypatch.delenv(NET_MODEL_ENV_VAR, raising=False)
    monkeypatch.setenv(ENGINE_MACRO_ENV_VAR, "1")
    fig4_macro = _measure_fig4_quick_sweep_s()
    monkeypatch.delenv(ENGINE_MACRO_ENV_VAR, raising=False)
    current = {
        "events_per_sec": round(_measure_events_per_sec(), 1),
        "fig4_quick_sweep_s": round(fig4_frames, 3),
        "fig4_quick_sweep_fluid_s": round(fig4_fluid, 3),
        "fig4_quick_sweep_macro_s": round(fig4_macro, 3),
        "fig4_wire_hub_frames_s": round(wire_frames, 4),
        "fig4_wire_hub_fluid_s": round(wire_fluid, 4),
        "disk_replay_mech_s": round(disk_mech, 4),
        "disk_replay_queued_s": round(disk_queued, 4),
        "disk_cold_sweep_mech_s": round(cold_mech, 3),
        "disk_cold_sweep_queued_s": round(cold_queued, 3),
        "macro_replay_off_s": round(macro_off_s, 4),
        "macro_replay_on_s": round(macro_on_s, 4),
        "trace_replay_s": round(replay_s, 4),
        "shard_replay_serial_s": round(shard_serial_s, 4),
        "shard_replay_4w_s": round(shard_4w_s, 4),
        "openloop_knee_256_s": round(knee_s, 3),
        "mgr_shard_speedup": round(mgr_speedup, 3),
    }
    # Host-independent gate: replaying a recorded run drives the same
    # client calls the generator did, so it must not inflate the event
    # budget of the run it reproduces.
    replay_overhead = replay_events / source_events
    assert replay_overhead <= TRACE_REPLAY_EVENT_OVERHEAD, (
        f"trace replay processed {replay_overhead:.2f}x the recorded "
        f"run's events ({source_events} -> {replay_events}; ceiling "
        f"{TRACE_REPLAY_EVENT_OVERHEAD}x)"
    )
    # Host-independent gate: the fluid model's whole point is removing
    # per-frame events from the wire, so its replay must stay at least
    # FLUID_SPEEDUP_FLOOR times faster than frame-by-frame simulation.
    speedup = wire_frames / wire_fluid
    assert speedup >= FLUID_SPEEDUP_FLOOR, (
        f"fluid wire replay only {speedup:.2f}x faster than frames "
        f"(floor {FLUID_SPEEDUP_FLOOR}x)"
    )
    # Same deal one layer down: the queued disk model replaces per-run
    # process/Resource round-trips with computed batch service times.
    disk_speedup = disk_mech / disk_queued
    assert disk_speedup >= DISK_SPEEDUP_FLOOR, (
        f"queued disk replay only {disk_speedup:.2f}x faster than mech "
        f"(floor {DISK_SPEEDUP_FLOOR}x)"
    )
    # End to end, a disk-bound cold-cache sweep must come out ahead
    # too (a much weaker bar than the replay floor: the PVFS and
    # network layers dilute the disk's share of the event budget).
    assert cold_queued < cold_mech, (
        f"queued cold-cache sweep ({cold_queued:.3f}s) not faster than "
        f"mech ({cold_mech:.3f}s)"
    )
    # And one layer up again: coalescing fully-hit read bursts into a
    # single event each must pay off in wall-clock AND in the
    # (deterministic) event budget.
    macro_speedup = macro_off_s / macro_on_s
    assert macro_speedup >= MACRO_SPEEDUP_FLOOR, (
        f"macro hit-burst replay only {macro_speedup:.2f}x faster than "
        f"the event-level path (floor {MACRO_SPEEDUP_FLOOR}x)"
    )
    event_ratio = macro_off_events / macro_on_events
    assert event_ratio >= MACRO_EVENT_RATIO_FLOOR, (
        f"macro path only cut events by {event_ratio:.2f}x "
        f"({macro_off_events} -> {macro_on_events}; floor "
        f"{MACRO_EVENT_RATIO_FLOOR}x)"
    )
    # Host-independent gate: sharding bounds parallel speedup by how
    # evenly the (deterministic) event budget splits across shards.
    assert shard_split >= SHARD_EVENT_SPLIT_FLOOR, (
        f"4-shard replay split only {shard_split:.2f}x "
        f"(floor {SHARD_EVENT_SPLIT_FLOOR}x): the busiest shard holds "
        "too much of the event budget"
    )
    # Host-independent gate: at the 256-node knee the single mgr is
    # the serialization point; hash-partitioning it across 4 shards
    # must move completed throughput by at least the floor.  Simulated
    # time, so the ratio is deterministic.
    assert mgr_speedup >= MGR_SHARD_SPEEDUP_FLOOR, (
        f"4 mgr shards only completed {mgr_speedup:.2f}x the single "
        f"mgr's ops/s at the 256-node open-loop knee "
        f"(floor {MGR_SHARD_SPEEDUP_FLOOR}x)"
    )
    if (os.cpu_count() or 1) >= 4:
        shard_speedup = shard_serial_s / shard_4w_s
        assert shard_speedup >= SHARD_WALLCLOCK_FLOOR, (
            f"4-worker shard replay only {shard_speedup:.2f}x faster "
            f"than serial ({shard_serial_s:.3f}s -> {shard_4w_s:.3f}s; "
            f"floor {SHARD_WALLCLOCK_FLOOR}x on a "
            f"{os.cpu_count()}-core host)"
        )
    if os.environ.get(UPDATE_ENV_VAR) or not BASELINE_PATH.exists():
        payload = {
            "comment": (
                "Engine perf baseline; refresh with "
                f"{UPDATE_ENV_VAR}=1 pytest "
                "benchmarks/test_bench_regression.py"
            ),
            **current,
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        pytest.skip(f"baseline written to {BASELINE_PATH}")
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["events_per_sec"] / REGRESSION_FACTOR
    assert current["events_per_sec"] >= floor, (
        f"event-loop throughput regressed: {current['events_per_sec']:.0f} "
        f"events/s vs baseline {baseline['events_per_sec']:.0f} "
        f"(floor {floor:.0f})"
    )
    for key, value in current.items():
        if not key.endswith("_s") or key not in baseline:
            continue  # throughput handled above; tolerate stale files
        ceiling = baseline[key] * REGRESSION_FACTOR
        assert value <= ceiling, (
            f"{key} regressed: {value:.3f}s vs baseline "
            f"{baseline[key]:.3f}s (ceiling {ceiling:.3f}s)"
        )
