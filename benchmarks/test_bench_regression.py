"""Benchmark-regression harness gating the engine fast paths.

Tracks two host-side numbers in ``BENCH_engine.json`` at the repo
root so the perf trajectory is visible across PRs:

* ``events_per_sec`` — raw event-loop throughput (timeout
  schedule/fire pairs per wall-clock second, best of three);
* ``fig4_quick_sweep_s`` — end-to-end wall-clock of the quick fig4
  sweep run serially (``REPRO_SWEEP_WORKERS=1``), i.e. the simulator
  cost of a real figure reproduction with parallelism factored out.

If the baseline file is missing — or ``REPRO_BENCH_UPDATE=1`` is set —
the current numbers are written as the new baseline and the test is
skipped.  Otherwise the test fails when either metric regresses by
more than ``REGRESSION_FACTOR``; the factor is deliberately generous
because absolute numbers vary across hosts and CI runners.  After an
intentional engine change, refresh with::

    REPRO_BENCH_UPDATE=1 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_regression.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.parallel import WORKERS_ENV_VAR
from repro.sim import Environment

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Set to refresh the committed baseline instead of comparing to it.
UPDATE_ENV_VAR = "REPRO_BENCH_UPDATE"

#: A metric may be up to this many times worse than baseline before the
#: test fails.  Generous on purpose: the baseline is measured on one
#: host and compared on many.
REGRESSION_FACTOR = 2.5


def _measure_events_per_sec(n_events: int = 200_000, rounds: int = 3) -> float:
    """Timeout schedule+fire pairs per second, best of ``rounds``."""

    def ticker(env):
        for _ in range(n_events):
            yield env.timeout(1)

    best = 0.0
    for _ in range(rounds):
        env = Environment()
        env.process(ticker(env))
        t0 = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - t0
        assert env.now == n_events
        best = max(best, n_events / elapsed)
    return best


def _measure_fig4_quick_sweep_s() -> float:
    """Wall-clock seconds for the serial quick fig4 sweep."""
    from repro.experiments.fig4 import run_fig4

    t0 = time.perf_counter()
    run_fig4(quick=True)
    return time.perf_counter() - t0


def test_engine_regression(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV_VAR, "1")  # comparable across hosts
    current = {
        "events_per_sec": round(_measure_events_per_sec(), 1),
        "fig4_quick_sweep_s": round(_measure_fig4_quick_sweep_s(), 3),
    }
    if os.environ.get(UPDATE_ENV_VAR) or not BASELINE_PATH.exists():
        payload = {
            "comment": (
                "Engine perf baseline; refresh with "
                f"{UPDATE_ENV_VAR}=1 pytest "
                "benchmarks/test_bench_regression.py"
            ),
            **current,
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        pytest.skip(f"baseline written to {BASELINE_PATH}")
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["events_per_sec"] / REGRESSION_FACTOR
    assert current["events_per_sec"] >= floor, (
        f"event-loop throughput regressed: {current['events_per_sec']:.0f} "
        f"events/s vs baseline {baseline['events_per_sec']:.0f} "
        f"(floor {floor:.0f})"
    )
    ceiling = baseline["fig4_quick_sweep_s"] * REGRESSION_FACTOR
    assert current["fig4_quick_sweep_s"] <= ceiling, (
        f"fig4 quick sweep regressed: {current['fig4_quick_sweep_s']:.2f}s "
        f"vs baseline {baseline['fig4_quick_sweep_s']:.2f}s "
        f"(ceiling {ceiling:.2f}s)"
    )
