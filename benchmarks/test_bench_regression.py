"""Benchmark-regression harness gating the engine fast paths.

Tracks host-side numbers in ``BENCH_engine.json`` at the repo root so
the perf trajectory is visible across PRs:

* ``events_per_sec`` — raw event-loop throughput (timeout
  schedule/fire pairs per wall-clock second, best of three);
* ``fig4_quick_sweep_s`` — end-to-end wall-clock of the quick fig4
  sweep run serially (``REPRO_SWEEP_WORKERS=1``), i.e. the simulator
  cost of a real figure reproduction with parallelism factored out;
* ``fig4_quick_sweep_fluid_s`` — the same sweep under
  ``REPRO_NET_MODEL=fluid`` (analytic bandwidth sharing);
* ``fig4_wire_hub_frames_s`` / ``fig4_wire_hub_fluid_s`` — fig4's
  transfer pattern (p=4 senders, the figure's request sizes) replayed
  through the shared-hub network alone, per contention model.  This
  isolates the network simulation cost the fluid model attacks; the
  harness additionally *gates the speedup*: the fluid replay must be
  at least ``FLUID_SPEEDUP_FLOOR``x faster than the frame replay.

If the baseline file is missing — or ``REPRO_BENCH_UPDATE=1`` is set —
the current numbers are written as the new baseline and the test is
skipped.  Otherwise the test fails when either metric regresses by
more than ``REGRESSION_FACTOR``; the factor is deliberately generous
because absolute numbers vary across hosts and CI runners.  After an
intentional engine change, refresh with::

    REPRO_BENCH_UPDATE=1 PYTHONPATH=src \
        python -m pytest benchmarks/test_bench_regression.py -q
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.cluster.config import NET_MODEL_ENV_VAR
from repro.experiments.parallel import WORKERS_ENV_VAR
from repro.sim import Environment

BASELINE_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"

#: Set to refresh the committed baseline instead of comparing to it.
UPDATE_ENV_VAR = "REPRO_BENCH_UPDATE"

#: A metric may be up to this many times worse than baseline before the
#: test fails.  Generous on purpose: the baseline is measured on one
#: host and compared on many.
REGRESSION_FACTOR = 2.5

#: The fluid model must keep the fig4 wire replay at least this many
#: times faster than the frame model.  Measured live (both numbers
#: from the same host in the same run), so unlike the baseline gates
#: this ratio is host-independent; observed ~3.5-4x.
FLUID_SPEEDUP_FLOOR = 2.0


def _measure_events_per_sec(n_events: int = 200_000, rounds: int = 3) -> float:
    """Timeout schedule+fire pairs per second, best of ``rounds``."""

    def ticker(env):
        for _ in range(n_events):
            yield env.timeout(1)

    best = 0.0
    for _ in range(rounds):
        env = Environment()
        env.process(ticker(env))
        t0 = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - t0
        assert env.now == n_events
        best = max(best, n_events / elapsed)
    return best


def _measure_fig4_quick_sweep_s() -> float:
    """Wall-clock seconds for the serial quick fig4 sweep."""
    from repro.experiments.fig4 import run_fig4

    t0 = time.perf_counter()
    run_fig4(quick=True)
    return time.perf_counter() - t0


def _measure_fig4_wire_sweep_s(net_model: str, rounds: int = 3) -> float:
    """Fig4's transfer pattern through the shared hub alone, best of 3.

    Four senders (fig4's p=4) each stream the figure's request sizes
    as back-to-back messages over a hub-topology network.  No cache,
    disk, or PVFS machinery — this is the pure network-simulation cost
    the fluid model replaces with analytic rate sharing.
    """
    from repro.net import FluidFabric, Network, SharedHubFabric
    from repro.net.message import Message

    senders = 4
    msgs_per_size = 32
    sizes = (4096, 65536, 262144, 1048576)

    def replay() -> float:
        env = Environment()
        fabric = (
            FluidFabric(env, mode="hub")
            if net_model == "fluid"
            else SharedHubFabric(env)
        )
        net = Network(env, fabric=fabric)
        inboxes = {
            i: net.register(f"rx{i}", 1) for i in range(senders)
        }

        def stream(i):
            for size in sizes:
                for _ in range(msgs_per_size):
                    message = Message(
                        kind="data",
                        size_bytes=size,
                        src=f"tx{i}",
                        dst=f"rx{i}",
                    )
                    yield net.deliver(message, inboxes[i])
                    yield inboxes[i].get()

        for i in range(senders):
            env.process(stream(i))
        t0 = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - t0
        assert (
            net.messages_delivered == senders * len(sizes) * msgs_per_size
        )
        return elapsed

    return min(replay() for _ in range(rounds))


def test_engine_regression(monkeypatch):
    monkeypatch.setenv(WORKERS_ENV_VAR, "1")  # comparable across hosts
    monkeypatch.delenv(NET_MODEL_ENV_VAR, raising=False)
    wire_frames = _measure_fig4_wire_sweep_s("frames")
    wire_fluid = _measure_fig4_wire_sweep_s("fluid")
    fig4_frames = _measure_fig4_quick_sweep_s()
    monkeypatch.setenv(NET_MODEL_ENV_VAR, "fluid")
    fig4_fluid = _measure_fig4_quick_sweep_s()
    monkeypatch.delenv(NET_MODEL_ENV_VAR, raising=False)
    current = {
        "events_per_sec": round(_measure_events_per_sec(), 1),
        "fig4_quick_sweep_s": round(fig4_frames, 3),
        "fig4_quick_sweep_fluid_s": round(fig4_fluid, 3),
        "fig4_wire_hub_frames_s": round(wire_frames, 4),
        "fig4_wire_hub_fluid_s": round(wire_fluid, 4),
    }
    # Host-independent gate: the fluid model's whole point is removing
    # per-frame events from the wire, so its replay must stay at least
    # FLUID_SPEEDUP_FLOOR times faster than frame-by-frame simulation.
    speedup = wire_frames / wire_fluid
    assert speedup >= FLUID_SPEEDUP_FLOOR, (
        f"fluid wire replay only {speedup:.2f}x faster than frames "
        f"(floor {FLUID_SPEEDUP_FLOOR}x)"
    )
    if os.environ.get(UPDATE_ENV_VAR) or not BASELINE_PATH.exists():
        payload = {
            "comment": (
                "Engine perf baseline; refresh with "
                f"{UPDATE_ENV_VAR}=1 pytest "
                "benchmarks/test_bench_regression.py"
            ),
            **current,
        }
        BASELINE_PATH.write_text(json.dumps(payload, indent=2) + "\n")
        pytest.skip(f"baseline written to {BASELINE_PATH}")
    baseline = json.loads(BASELINE_PATH.read_text())
    floor = baseline["events_per_sec"] / REGRESSION_FACTOR
    assert current["events_per_sec"] >= floor, (
        f"event-loop throughput regressed: {current['events_per_sec']:.0f} "
        f"events/s vs baseline {baseline['events_per_sec']:.0f} "
        f"(floor {floor:.0f})"
    )
    for key, value in current.items():
        if not key.endswith("_s") or key not in baseline:
            continue  # throughput handled above; tolerate stale files
        ceiling = baseline[key] * REGRESSION_FACTOR
        assert value <= ceiling, (
            f"{key} regressed: {value:.3f}s vs baseline "
            f"{baseline[key]:.3f}s (ceiling {ceiling:.3f}s)"
        )
