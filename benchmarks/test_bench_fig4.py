"""Benchmark: Figure 4 — caching overhead at l=0 (worst case).

Each bench regenerates one point of the figure and asserts the paper's
qualitative claim: (a) read overhead is small; (b) write-behind wins
at small request sizes and the gap narrows as d grows.
"""

import pytest

from benchmarks.conftest import once, single_instance_outcome

READ_SIZES = [4096, 65536, 262144]
WRITE_SIZES = [4096, 65536, 262144]


@pytest.mark.parametrize("d", READ_SIZES)
def test_fig4a_read_overhead(benchmark, d):
    def run():
        with_cache = single_instance_outcome(d, "read", True, 0.0)
        without = single_instance_outcome(d, "read", False, 0.0)
        return with_cache.mean_read_latency, without.mean_read_latency

    cached, plain = once(benchmark, run)
    benchmark.extra_info["caching_s"] = cached
    benchmark.extra_info["no_caching_s"] = plain
    # "the differences between the two are not very significant"
    assert cached < plain * 1.5, (
        f"l=0 read overhead too large at d={d}: {cached:.4f}s vs {plain:.4f}s"
    )


@pytest.mark.parametrize("d", WRITE_SIZES)
def test_fig4b_write_behind(benchmark, d):
    def run():
        with_cache = single_instance_outcome(d, "write", True, 0.0)
        without = single_instance_outcome(d, "write", False, 0.0)
        return with_cache.mean_write_latency, without.mean_write_latency

    cached, plain = once(benchmark, run)
    benchmark.extra_info["caching_s"] = cached
    benchmark.extra_info["no_caching_s"] = plain
    if d <= 65536:
        # small d: write-behind wins clearly
        assert cached < plain, (
            f"write-behind should win at d={d}: {cached:.4f}s vs {plain:.4f}s"
        )
    else:
        # large d: differences lessen (cache-space blocking)
        assert cached < plain * 2.0


def test_fig4b_gap_narrows_with_d(benchmark):
    """The caching advantage shrinks monotonically toward large d."""

    def run():
        ratios = []
        for d in (4096, 262144):
            cached = single_instance_outcome(d, "write", True, 0.0)
            plain = single_instance_outcome(d, "write", False, 0.0)
            ratios.append(
                plain.mean_write_latency / cached.mean_write_latency
            )
        return ratios

    small_d_ratio, large_d_ratio = once(benchmark, run)
    assert small_d_ratio > large_d_ratio
