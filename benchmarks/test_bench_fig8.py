"""Benchmark: Figure 8 — can caching compensate for lost parallelism?

Three placements of two data-sharing apps on a 6-node cluster:
co-located with caching (3 nodes), spread without caching (6 nodes),
co-located without caching.  Asserts the paper's scheduling result:
parallelism wins at l=0 (low sharing), caching wins from l=0.5 up,
and un-cached co-location is always worst.
"""

import pytest

from benchmarks.conftest import once, two_instance_outcome

D = 65536
COLOC = [["node0", "node1", "node2"]] * 2
SPREAD = [["node0", "node1", "node2"], ["node3", "node4", "node5"]]


def _variant(variant: str, locality: float, sharing: float):
    if variant == "cache-coloc":
        return two_instance_outcome(
            D, locality, sharing, True, compute_nodes=6, node_sets=COLOC
        )
    if variant == "nocache-spread":
        return two_instance_outcome(
            D, locality, sharing, False, compute_nodes=6, node_sets=SPREAD
        )
    return two_instance_outcome(
        D, locality, sharing, False, compute_nodes=6, node_sets=COLOC
    )


def test_fig8a_parallelism_wins_at_l0_low_sharing(benchmark):
    def run():
        cache = _variant("cache-coloc", 0.0, 0.25).makespan
        spread = _variant("nocache-spread", 0.0, 0.25).makespan
        return cache, spread

    cache, spread = once(benchmark, run)
    benchmark.extra_info["cache_coloc_s"] = cache
    benchmark.extra_info["nocache_spread_s"] = spread
    # "the parallelism benefit ... is much higher than the
    # inter-application caching effects" (worst case for caching)
    assert spread < cache


@pytest.mark.parametrize("locality", [0.5, 1.0])
def test_fig8bc_caching_offsets_parallelism_loss(benchmark, locality):
    def run():
        cache = _variant("cache-coloc", locality, 0.5).makespan
        spread = _variant("nocache-spread", locality, 0.5).makespan
        return cache, spread

    cache, spread = once(benchmark, run)
    benchmark.extra_info["cache_coloc_s"] = cache
    benchmark.extra_info["nocache_spread_s"] = spread
    assert cache < spread, (
        f"l={locality}: caching on 3 nodes ({cache:.3f}s) should beat "
        f"spreading over 6 ({spread:.3f}s)"
    )


@pytest.mark.parametrize("locality", [0.0, 1.0])
def test_fig8_uncached_colocation_always_worst(benchmark, locality):
    def run():
        return {
            v: _variant(v, locality, 0.5).makespan
            for v in ("cache-coloc", "nocache-spread", "nocache-coloc")
        }

    times = once(benchmark, run)
    benchmark.extra_info.update({k: v for k, v in times.items()})
    assert times["nocache-coloc"] >= times["cache-coloc"]
    assert times["nocache-coloc"] >= times["nocache-spread"]


def test_fig8_sharing_favours_colocation(benchmark):
    """Higher sharing tilts the balance further toward caching (l=0)."""

    def run():
        return [
            _variant("cache-coloc", 0.0, s).makespan for s in (0.25, 1.0)
        ]

    low, high = once(benchmark, run)
    assert high < low
