"""Benchmark: two-phase collective I/O vs independent access, with and
without the kernel cache (the MPI-IO interplay from related work)."""

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.pvfs.collective import run_interleaved_read

from benchmarks.conftest import once

RANKS = ["node0", "node0", "node1", "node1"]


def _measure(collective: bool, caching: bool, mode: str = "read") -> float:
    cluster = Cluster(
        ClusterConfig(compute_nodes=2, iod_nodes=2, caching=caching)
    )
    return run_interleaved_read(
        cluster, RANKS, item_bytes=2048, items_per_rank=32,
        collective=collective, mode=mode,
    )


def test_two_phase_read_beats_independent(benchmark):
    def run():
        return _measure(True, False), _measure(False, False)

    collective, independent = once(benchmark, run)
    benchmark.extra_info["collective_s"] = collective
    benchmark.extra_info["independent_s"] = independent
    assert collective < independent


def test_two_phase_write_beats_independent(benchmark):
    def run():
        return _measure(True, False, "write"), _measure(False, False, "write")

    collective, independent = once(benchmark, run)
    assert collective < independent


def test_cache_reduces_independent_penalty(benchmark):
    """The kernel cache merges co-located ranks' sub-block items,
    narrowing the gap user-level collectives exist to close."""

    def run():
        gap_nocache = _measure(False, False) / _measure(True, False)
        gap_cache = _measure(False, True) / _measure(True, True)
        return gap_nocache, gap_cache

    gap_nocache, gap_cache = once(benchmark, run)
    benchmark.extra_info["gap_without_cache"] = gap_nocache
    benchmark.extra_info["gap_with_cache"] = gap_cache
    assert gap_cache < gap_nocache
