"""Benchmark: Figure 5 — caching benefit at l=1 (best case).

Asserts the paper's claims: substantial wins for both reads and
writes, with benefits that hold across request sizes (and only the
smallest requests showing thin margins).
"""

import pytest

from benchmarks.conftest import once, single_instance_outcome

SIZES = [4096, 65536, 262144]


@pytest.mark.parametrize("d", SIZES)
def test_fig5a_read_benefit(benchmark, d):
    def run():
        with_cache = single_instance_outcome(d, "read", True, 1.0)
        without = single_instance_outcome(d, "read", False, 1.0)
        return with_cache.mean_read_latency, without.mean_read_latency

    cached, plain = once(benchmark, run)
    benchmark.extra_info["speedup"] = plain / cached
    assert cached < plain, f"l=1 reads must win at d={d}"
    if d >= 65536:
        assert plain / cached > 2.0, (
            f"l=1 read speedup too small at d={d}: {plain / cached:.2f}x"
        )


@pytest.mark.parametrize("d", SIZES)
def test_fig5b_write_benefit(benchmark, d):
    def run():
        with_cache = single_instance_outcome(d, "write", True, 1.0)
        without = single_instance_outcome(d, "write", False, 1.0)
        return with_cache.mean_write_latency, without.mean_write_latency

    cached, plain = once(benchmark, run)
    benchmark.extra_info["speedup"] = plain / cached
    assert cached < plain, f"l=1 writes must win at d={d}"


def test_fig5_beats_fig4(benchmark):
    """Locality turns overhead into benefit: the caching version's l=1
    read time must undercut its own l=0 time."""

    def run():
        hot = single_instance_outcome(65536, "read", True, 1.0)
        cold = single_instance_outcome(65536, "read", True, 0.0)
        return hot.mean_read_latency, cold.mean_read_latency

    hot, cold = once(benchmark, run)
    assert hot < cold / 2
