"""Benchmark: Figure 7 — inter-application caching at p=2.

Same workload as Figure 6 on two nodes.  Extra claim checked: "when we
compare the experiments for p = 2 and 4, the caching benefits for the
larger p are more significant" — caching scales with parallelism.
"""

import pytest

from benchmarks.conftest import once, two_instance_outcome

D = 65536


@pytest.mark.parametrize("sharing", [0.25, 1.00])
def test_fig7a_l0_sharing_beats_nocache(benchmark, sharing):
    def run():
        cached = two_instance_outcome(D, 0.0, sharing, True, p=2)
        plain = two_instance_outcome(D, 0.0, sharing, False, p=2)
        return cached.makespan, plain.makespan

    cached, plain = once(benchmark, run)
    assert cached < plain


@pytest.mark.parametrize("locality", [0.5, 1.0])
def test_fig7bc_locality_benefit(benchmark, locality):
    def run():
        cached = two_instance_outcome(D, locality, 0.5, True, p=2)
        plain = two_instance_outcome(D, locality, 0.5, False, p=2)
        return plain.makespan / cached.makespan

    speedup = once(benchmark, run)
    benchmark.extra_info["speedup"] = speedup
    assert speedup > 1.3


def test_fig7_vs_fig6_scalability(benchmark):
    """p=4 caching speedup exceeds p=2 caching speedup (l=1)."""

    def run():
        speedups = {}
        for p in (2, 4):
            cached = two_instance_outcome(D, 1.0, 0.5, True, p=p)
            plain = two_instance_outcome(D, 1.0, 0.5, False, p=p)
            speedups[p] = plain.makespan / cached.makespan
        return speedups

    speedups = once(benchmark, run)
    benchmark.extra_info["speedups"] = str(speedups)
    assert speedups[4] > speedups[2], (
        f"caching should scale with p: {speedups}"
    )
