"""A scheduling advisor built on the paper's Figure 8 result.

The paper's most scheduling-relevant finding: when two applications
share data, co-locating them on the same (cached) nodes can beat
giving each its own nodes — if their locality/sharing is high enough.
This example *is* that scheduler decision: given a workload's locality
``l`` and sharing degree ``s``, it simulates both placements on a
6-node cluster and reports which to choose, sweeping the (l, s) plane
to show the crossover frontier.

Run:  python examples/scheduler_colocation.py
"""

from repro.cluster.config import ClusterConfig
from repro.workload import MicroBenchParams, run_instances

TOTAL_BYTES = 2 * 2**20
REQUEST = 65536


def placement_time(l: float, s: float, colocate: bool) -> float:
    """Simulated makespan of the two-app workload under a placement."""
    config = ClusterConfig(compute_nodes=6, iod_nodes=6, caching=colocate)
    if colocate:
        node_sets = [["node0", "node1", "node2"]] * 2
    else:
        node_sets = [["node0", "node1", "node2"], ["node3", "node4", "node5"]]
    instances = [
        MicroBenchParams(
            nodes=node_sets[i],
            request_size=REQUEST,
            iterations=TOTAL_BYTES // REQUEST,
            mode="read",
            locality=l,
            sharing=s,
            instance=i,
            partition_bytes=4 * 2**20,
            warmup=True,
            seed=42,
        )
        for i in range(2)
    ]
    return run_instances(config, instances).makespan


def main() -> None:
    print("Scheduling two data-sharing apps on a 6-node cluster:")
    print("co-locate on 3 cached nodes, or spread over all 6?\n")
    header = "  l \\ s |" + "".join(f"  {int(s*100):>3}%   " for s in (0.25, 0.75))
    print(header)
    print("  " + "-" * (len(header) - 2))
    for l in (0.0, 0.5, 1.0):
        cells = []
        for s in (0.25, 0.75):
            t_co = placement_time(l, s, colocate=True)
            t_sp = placement_time(l, s, colocate=False)
            choice = "COLOCATE" if t_co < t_sp else "spread"
            cells.append(f"{choice:>8}")
        print(f"   {l:.1f}  |" + "  ".join(cells))
    print(
        "\n('COLOCATE' frees 3 nodes for other jobs at no cost — the"
        "\n paper's argument for cache-aware cluster schedulers.)"
    )


if __name__ == "__main__":
    main()
