"""Two-phase collective I/O meets the kernel cache.

The paper's related work contrasts its kernel cache with MPI-IO's
user-level optimizations ("the main optimizations in MPI-IO are for
non-contiguous parallel accesses to shared data") and notes MPI-IO's
"response time is largely determined by the caching capabilities
provided by the underlying file system."  This example puts both
layers on the same cluster and measures their interplay:

four ranks read an interleaved 2 KB-item matrix slab, each combination
of {independent, two-phase collective} x {no cache, kernel cache}.

Run:  python examples/collective_io.py
"""

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.pvfs.collective import run_interleaved_read

ITEM = 2048
ITEMS = 32
RANKS = ["node0", "node0", "node1", "node1"]  # adjacent ranks co-located


def measure(collective: bool, caching: bool) -> float:
    cluster = Cluster(
        ClusterConfig(compute_nodes=2, iod_nodes=2, caching=caching)
    )
    return run_interleaved_read(
        cluster, RANKS, item_bytes=ITEM, items_per_rank=ITEMS,
        collective=collective,
    )


def main() -> None:
    print(
        f"4 ranks x {ITEMS} interleaved items of {ITEM} B "
        "(rank-cyclic layout), 2 nodes:\n"
    )
    rows = []
    for collective in (False, True):
        for caching in (False, True):
            t = measure(collective, caching)
            rows.append((collective, caching, t))
    print(f"  {'access method':<22} {'cache':>6}   time")
    for collective, caching, t in rows:
        method = "two-phase collective" if collective else "independent"
        cache = "yes" if caching else "no"
        print(f"  {method:<22} {cache:>6}  {t * 1e3:7.1f} ms")
    indep_plain = rows[0][2]
    indep_cached = rows[1][2]
    coll_plain = rows[2][2]
    print(
        "\nThe collective fixes scattered small I/O at user level "
        f"({indep_plain / coll_plain:.0f}x);"
    )
    print(
        "the kernel cache fixes much of it transparently "
        f"({indep_plain / indep_cached:.1f}x) by merging co-located"
    )
    print(
        "ranks' sub-block items into shared 4 KB fetches — exactly the"
        "\nfile-system-level caching MPI-IO implementations rely on."
    )


if __name__ == "__main__":
    main()
