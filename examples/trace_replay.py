"""Record a workload's I/O trace, then replay it under different policies.

The paper's closing lament is the lack of benchmarks "containing groups
of applications sharing data".  The trace IR fills that gap: this
example records the request stream of a two-application sharing
workload into the versioned JSONL format, replays the *identical*
workload against three cluster configurations to compare policies
apples-to-apples, then uses a transform pass to double the workload
and replay that too:

* original PVFS (no caching),
* the paper's kernel cache module,
* the cache module + the global-cache and readahead extensions.

Run:  python examples/trace_replay.py
"""

from repro.cluster.cluster import Cluster
from repro.cluster.config import CacheConfig, ClusterConfig
from repro.workload.trace import TraceRecorder, TraceReplayer, loads
from repro.workload.transform import scale_out

STEP = 32 * 1024
STEPS = 12


def record_workload() -> str:
    """Run a two-app producer/consumer + scanning mix; return its JSONL."""
    cluster = Cluster(ClusterConfig(compute_nodes=2, iod_nodes=2))
    recorder = TraceRecorder(cluster)
    producer = recorder.attach(cluster.client("node0"), "producer")
    scanner = recorder.attach(cluster.client("node0"), "scanner")
    scanner2 = recorder.attach(cluster.client("node1"), "scanner-2")

    def produce(env):
        f = yield from producer.open("/dataset")
        for step in range(STEPS):
            yield from producer.write(f, step * STEP, STEP, None)
            yield env.timeout(2e-3)

    def scan(env, client, lag):
        yield env.timeout(lag)
        f = yield from client.open("/dataset")
        for step in range(STEPS):
            yield from client.read(f, step * STEP, STEP)
            yield env.timeout(1e-3)

    env = cluster.env
    procs = [
        env.process(produce(env)),
        env.process(scan(env, scanner, 5e-3)),
        env.process(scan(env, scanner2, 8e-3)),
    ]
    env.run(until=env.all_of(procs))
    return recorder.dumps()


def replay(trace_text: str, label: str, config: ClusterConfig) -> float:
    trace = loads(trace_text)
    cluster = Cluster(config)
    makespan = TraceReplayer(cluster, trace, preserve_timing=True).run()
    read_lat = cluster.metrics.mean("client.read_latency")
    write_lat = cluster.metrics.mean("client.write_latency")
    print(
        f"  {label:<34} makespan {makespan * 1e3:7.1f} ms   "
        f"read {read_lat * 1e3:6.2f} ms   write {write_lat * 1e3:5.2f} ms"
    )
    return makespan


def main() -> None:
    trace_text = record_workload()
    trace = loads(trace_text)
    print(f"recorded {len(trace)} requests from "
          f"{len(trace.processes)} processes (JSONL, content hash "
          f"{trace.content_hash()});")
    print("replaying the identical stream (original arrival times) under")
    print("three policies, on a cluster with cold iod page caches:\n")
    replay(
        trace_text,
        "original PVFS (no caching)",
        ClusterConfig(
            compute_nodes=2, iod_nodes=2, caching=False, pagecache_blocks=0
        ),
    )
    replay(
        trace_text,
        "kernel cache module (paper)",
        ClusterConfig(
            compute_nodes=2, iod_nodes=2, caching=True, pagecache_blocks=0
        ),
    )
    replay(
        trace_text,
        "cache module + global cache",
        ClusterConfig(
            compute_nodes=2,
            iod_nodes=2,
            caching=True,
            pagecache_blocks=0,
            cache=CacheConfig(global_cache=True),
        ),
    )
    print("\nSame byte-for-byte request stream each time — the policy")
    print("differences are the whole story.  (The global cache's extra")
    print("win comes from peer hits replacing disk seeks at the iods.)")

    doubled = scale_out(2)(trace)
    print(f"\nscale_out(2) transform: {len(doubled)} requests from "
          f"{len(doubled.processes)} processes; replaying on p=4:\n")
    replay(
        doubled.dumps(),
        "2x scaled, cache module",
        ClusterConfig(
            compute_nodes=4, iod_nodes=4, caching=True, pagecache_blocks=0
        ),
    )


if __name__ == "__main__":
    main()
