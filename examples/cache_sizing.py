"""Trace-driven cache sizing: record, analyze, predict, verify.

The paper fixes its cache at 1.2 MB and probes locality empirically.
This example shows the principled workflow the library enables:

1. **record** the block trace of a real workload mix;
2. **analyze** it with Mattson stack distances — one pass predicts the
   LRU hit ratio for *every* candidate cache size;
3. **pick** the knee of the curve;
4. **verify** by replaying the identical trace against simulated
   clusters with each cache size.

Run:  python examples/cache_sizing.py
"""

from repro.cluster.cluster import Cluster
from repro.cluster.config import CacheConfig, ClusterConfig
from repro.workload.analysis import analyze_trace
from repro.workload.apps import AssociationMiningScan, ArchiveMaintainer, run_app_mix
from repro.workload.trace import TraceRecorder, TraceReplayer

CANDIDATE_BLOCKS = [32, 75, 150, 300, 600]  # 128 KB .. 2.4 MB


def record_trace():
    """A miner re-scanning a dataset while an archiver appends."""
    cluster = Cluster(ClusterConfig(compute_nodes=2, iod_nodes=2))
    recorder = TraceRecorder(cluster)
    miner = AssociationMiningScan(
        cluster, "node0", dataset_bytes=600 * 1024, passes=3, name="miner"
    )
    archiver = ArchiveMaintainer(cluster, "node0", batches=12, name="arch")
    recorder.attach(miner.client, "miner")
    recorder.attach(archiver.client, "archiver")
    run_app_mix(cluster, [miner, archiver])
    return recorder.events


def main() -> None:
    events = record_trace()
    summary = analyze_trace(events, cache_sizes=CANDIDATE_BLOCKS)
    print(
        f"trace: {summary['accesses']} block accesses over "
        f"{summary['distinct_blocks']} distinct blocks "
        f"({summary['compulsory_misses']} compulsory misses)\n"
    )
    print("  cache size   predicted hit ratio   replayed makespan")
    curve = summary["hit_ratio_by_cache_blocks"]
    for blocks in CANDIDATE_BLOCKS:
        config = ClusterConfig(
            compute_nodes=2,
            iod_nodes=2,
            caching=True,
            cache=CacheConfig(size_bytes=blocks * 4096),
        )
        makespan = TraceReplayer(
            Cluster(config), events, preserve_timing=False
        ).run()
        print(
            f"  {blocks * 4 :>7} KB   {curve[blocks]:>12.1%}"
            f"   {makespan * 1e3:>13.1f} ms"
        )
    # the knee: smallest size within 2 points of the best hit ratio
    best = max(curve.values())
    knee = min(b for b in CANDIDATE_BLOCKS if curve[b] >= best - 0.02)
    print(
        f"\nknee of the curve: {knee * 4} KB — the working set the"
        "\nstack analysis found without simulating a single size."
    )


if __name__ == "__main__":
    main()
