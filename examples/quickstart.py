"""Quickstart: build a simulated PVFS cluster, run an app, see the cache work.

Builds the paper's testbed (4 compute/iod nodes, 100 Mbps switched
Ethernet, 1.2 MB kernel cache per node), runs one application that
writes and re-reads a dataset, and prints what the cache did.

Run:  python examples/quickstart.py
"""

from repro import Cluster, ClusterConfig


SIZE = 512 * 1024  # two regions of this fit the 1.2 MB cache


def main() -> None:
    config = ClusterConfig(compute_nodes=4, iod_nodes=4, caching=True)
    cluster = Cluster(config)
    client = cluster.client("node0")
    timings = {}

    def app(env):
        handle = yield from client.open("/data/quickstart")

        # Write 1 MB through the cache: returns at memcpy speed, the
        # flusher ships it to the iods in the background.
        t0 = env.now
        yield from client.write(handle, 0, SIZE, b"q" * SIZE)
        timings["write"] = env.now - t0

        # Cold read of a different region: misses, fetched from iods.
        t0 = env.now
        yield from client.read(handle, SIZE, SIZE)
        timings["cold read"] = env.now - t0

        # Warm read of the same region: served from the kernel cache.
        t0 = env.now
        data = yield from client.read(handle, 0, SIZE, want_data=True)
        timings["warm read"] = env.now - t0
        assert data == b"q" * SIZE, "read-your-writes violated!"

    proc = cluster.env.process(app(cluster.env))
    cluster.env.run(until=proc)

    print(f"simulated operation timings ({SIZE // 1024} KB each):")
    for name, seconds in timings.items():
        print(f"  {name:>10}: {seconds * 1e3:8.2f} ms")
    m = cluster.metrics
    hits, misses = m.count("cache.hits"), m.count("cache.misses")
    print("\ncache statistics on node0:")
    print(f"  hits={hits}  misses={misses}  "
          f"hit-ratio={hits / (hits + misses):.2%}")
    print(f"  blocks flushed: {m.count('flusher.blocks_cleaned')}")
    print(f"  faked iod acks: {m.count('cache.faked_acks')}")
    module = cluster.cache_modules["node0"]
    print(f"  resident blocks: {module.manager.n_resident} "
          f"/ {module.config.n_blocks}")
    speedup = timings["cold read"] / timings["warm read"]
    print(f"\nwarm read speedup over cold read: {speedup:.1f}x")


if __name__ == "__main__":
    main()
