"""Coherence with ``sync_write`` + the sharing-pattern classifier.

A coordinator process periodically checkpoints shared state that
workers on other nodes read between their work phases.  With the
default (non-coherent) write path, workers can read *stale*
checkpoints from their node's cache; ``sync_write`` invalidates the
remote copies so every worker sees the newest epoch.

The example also feeds the access trace into the sharing-pattern
classifier (the paper's future-work item) and prints its
per-file diagnosis + recommendation.

Run:  python examples/coherent_checkpointing.py
"""

from repro import Cluster, ClusterConfig
from repro.workload.classify import SharingClassifier, TraceCollector

CHECKPOINT_BYTES = 64 * 1024
EPOCHS = 5


def run(coherent: bool) -> tuple[int, int]:
    """Returns (stale_reads, invalidations)."""
    cluster = Cluster(ClusterConfig(compute_nodes=3, iod_nodes=3))
    env = cluster.env
    classifier = SharingClassifier()
    collector = TraceCollector(classifier)
    epoch_written = [env.event() for _ in range(EPOCHS)]
    stale = [0]

    def coordinator(env):
        client = cluster.client("node0")
        client.trace_sink = collector
        client.process_name = "coordinator"
        f = yield from client.open("/ckpt/state")
        for epoch in range(EPOCHS):
            payload = bytes([epoch + 1]) * CHECKPOINT_BYTES
            if coherent:
                yield from client.sync_write(
                    f, 0, CHECKPOINT_BYTES, payload
                )
            else:
                yield from client.write(f, 0, CHECKPOINT_BYTES, payload)
            epoch_written[epoch].succeed()
            yield env.timeout(0.01)  # work between checkpoints

    def worker(env, node):
        client = cluster.client(node)
        client.trace_sink = collector
        client.process_name = f"worker-{node}"
        f = yield from client.open("/ckpt/state")
        for epoch in range(EPOCHS):
            yield epoch_written[epoch]
            data = yield from client.read(
                f, 0, CHECKPOINT_BYTES, want_data=True
            )
            if data != bytes([epoch + 1]) * CHECKPOINT_BYTES:
                stale[0] += 1
            yield from cluster.node(node).compute(1e-3)

    procs = [env.process(coordinator(env))]
    for node in ("node1", "node2"):
        procs.append(env.process(worker(env, node)))
    env.run(until=env.all_of(procs))

    if coherent:
        f_id = cluster.mgr.lookup("/ckpt/state").file_id
        print("  classifier says:", classifier.classify(f_id))
        print("  recommendation:", classifier.recommendation(f_id))
    return stale[0], cluster.metrics.count("cache.invalidations_received")


def main() -> None:
    print(f"checkpoint/restore across 3 nodes, {EPOCHS} epochs:\n")
    print("default (non-coherent) writes:")
    stale, inval = run(coherent=False)
    print(f"  stale checkpoint reads: {stale}   invalidations: {inval}\n")
    print("sync_write (coherent) writes:")
    stale, inval = run(coherent=True)
    print(f"  stale checkpoint reads: {stale}   invalidations: {inval}")
    print(
        "\nsync_write propagates each checkpoint to the iod AND"
        "\ninvalidates remote caches, so no worker ever reads an old epoch."
    )


if __name__ == "__main__":
    main()
