"""The paper's motivating workload: a computational science analysis cycle.

Figure 1 of the paper sketches a cycle where a simulation produces
datasets that visualization and analysis programs consume — several
applications, running simultaneously, sharing disk-resident data.
This example builds exactly that pipeline on the simulated cluster:

* ``simulation``  writes a results dataset (time-step by time-step);
* ``visualizer``  renders each time-step (reads the full step);
* ``analyzer``    computes statistics (reads each step twice: pass 1
  for the mean, pass 2 for the variance).

The visualizer and analyzer run on the *same* nodes: every block the
visualizer faults in is a free hit for the analyzer — the paper's
inter-application data sharing.  Run once with caching and once
without to see the difference.

Run:  python examples/analysis_pipeline.py
"""

from repro import Cluster, ClusterConfig

STEP_BYTES = 512 * 1024
N_STEPS = 6
NODES = ["node0", "node1"]


def build_pipeline(caching: bool) -> float:
    """Run the full cycle; returns total simulated time."""
    config = ClusterConfig(compute_nodes=2, iod_nodes=2, caching=caching)
    cluster = Cluster(config)
    env = cluster.env
    step_ready = [env.event() for _ in range(N_STEPS)]

    def simulation(env):
        client = cluster.client("node0")
        f = yield from client.open("/results/run-042")
        for step in range(N_STEPS):
            # "compute" the step, then write it out
            yield from cluster.node("node0").compute(2e-3)
            yield from client.write(
                f, step * STEP_BYTES, STEP_BYTES, None
            )
            step_ready[step].succeed()

    def visualizer(env, node):
        client = cluster.client(node)
        f = yield from client.open("/results/run-042")
        for step in range(N_STEPS):
            yield step_ready[step]
            yield from client.read(f, step * STEP_BYTES, STEP_BYTES)
            yield from cluster.node(node).compute(1e-3)  # render

    def analyzer(env, node):
        client = cluster.client(node)
        f = yield from client.open("/results/run-042")
        for step in range(N_STEPS):
            yield step_ready[step]
            for _pass in range(2):  # mean pass + variance pass
                yield from client.read(f, step * STEP_BYTES, STEP_BYTES)
                yield from cluster.node(node).compute(5e-4)

    procs = [
        env.process(simulation(env)),
        env.process(visualizer(env, "node0")),
        env.process(analyzer(env, "node0")),
        env.process(visualizer(env, "node1")),
        env.process(analyzer(env, "node1")),
    ]
    env.run(until=env.all_of(procs))
    return env.now


def main() -> None:
    t_cached = build_pipeline(caching=True)
    t_plain = build_pipeline(caching=False)
    print("computational science analysis cycle "
          f"({N_STEPS} steps x {STEP_BYTES // 1024} KB, "
          "1 producer + 4 consumers on 2 nodes):")
    print(f"  original PVFS (no caching): {t_plain * 1e3:8.1f} ms")
    print(f"  with kernel cache module:   {t_cached * 1e3:8.1f} ms")
    print(f"  speedup: {t_plain / t_cached:.2f}x")
    print("\nWhy: the visualizer's miss populates the node's shared cache;")
    print("the analyzer's two passes over the same step then hit locally,")
    print("and the simulation's writes are absorbed by write-behind.")


if __name__ == "__main__":
    main()
