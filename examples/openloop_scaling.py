"""Find the metadata knee with an open-loop load, then shard it away.

The paper's cache never caches metadata — every ``open`` pays a round
trip to the single mgr daemon, which saturates at ~6.6k requests/s no
matter how many compute nodes offer load.  A closed-loop benchmark
can't see that ceiling (a saturated system is simply offered less),
so this example drives a churn-heavy *open-loop* arrival schedule
(DESIGN.md §18) at increasing offered rates and plots completed
against offered: completed tracks offered until the mgr saturates,
then flattens.  Hash-partitioning the namespace across 4 metadata
shards (``ClusterConfig(mgr_shards=4)``) moves the knee right past
the highest rate swept.

Run:  python examples/openloop_scaling.py
"""

from repro.experiments.scaling import (
    locate_knee,
    run_knee_curve,
    scaling_point,
)

P = 256
RATES = (2000.0, 4000.0, 8000.0, 16000.0)
SHARDS = (1, 4)


def measure(p: int, mgr_shards: int, rate_ops_s: float,
            duration_s: float = 0.15) -> dict:
    """One knee-curve cell: offered/completed ops/s at one config."""
    return scaling_point(
        p, mgr_shards, rate_ops_s=rate_ops_s, duration_s=duration_s
    )


def main() -> None:
    print(f"open-loop churn workload at p={P}: every request opens a")
    print("fresh file, so the metadata service is the whole story.")
    print("Sweeping offered rate for mgr_shards in", SHARDS, "...\n")

    result = run_knee_curve(p=P, shards=SHARDS, rates=RATES)
    print(result.to_table())

    print()
    for series in result.series:
        knee = locate_knee(result, series.label)
        print(
            f"  {series.label:<14} knee at ~{knee:8.0f} offered ops/s "
            "(highest rate where completed >= 95% of offered)"
        )
    print("\nThe single mgr flattens near its ~6.6k ops/s service")
    print("capacity; 4 shards keep completed == offered through the")
    print("top of the sweep — the knee moved right by more than 2x,")
    print("which is exactly what benchmarks/test_bench_regression.py")
    print("gates as `mgr_shard_speedup`.")


if __name__ == "__main__":
    main()
